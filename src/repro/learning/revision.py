"""Query revision (§6 future work, implemented).

"Given a query which is close to the user's intended query, our goal is to
determine the intended query through few membership questions — polynomial
in the distance between the given query and the intended query."

The reviser trusts the given query wherever the user confirms it and
relearns only the disagreeing parts:

1. **Heads.**  One A4-style probe over all non-heads detects whether the
   intent has *new* head variables (binary-searched out only if so); one
   head test per existing head confirms or drops it.
2. **Universal bodies.**  Each given dominant body is confirmed as a
   minimal body of the intent with two questions (its N2 and A2 from the
   verification set); a failed A2 shrinks the body in place.  One combined
   all-roots probe then certifies that no incomparable body was missed —
   the full root enumeration runs only when that probe fails.
3. **Conjunctions.**  After an A1 probe, each given distinguishing tuple is
   confirmed with one children-replacement question; the lattice walk then
   runs with the confirmed tuples pre-discovered, so regions the given
   query already explains are pruned immediately.

When the given query equals the intent, the reviser spends O(n + k)
questions (vs O(n^{θ+1} + kn lg n) to learn from scratch); the cost grows
with the revision distance of §6 — experiment E15 measures exactly that.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import FrozenSet

from repro.core import tuples as bt
from repro.core.normalize import canonicalize, r3_closure
from repro.core.query import QhornQuery
from repro.core.tuples import Question
from repro.lattice.boolean_lattice import BodyLattice, compliant_children
from repro.learning.questions import universal_head_question
from repro.learning.role_preserving import RolePreservingLearner
from repro.learning.search import find_all_batch_steps
from repro.oracle.base import MembershipOracle
from repro.protocol.core import Steps, ask_one, ask_round
from repro.protocol.drivers import drive

__all__ = ["RevisionResult", "QueryReviser", "revise_query"]


@dataclass
class RevisionResult:
    """Outcome of a revision: the corrected query plus a repair log."""

    query: QhornQuery
    changed: bool
    repairs: list[str] = field(default_factory=list)


class QueryReviser:
    """Revises a role-preserving query against a membership oracle."""

    def __init__(self, given: QhornQuery, oracle: MembershipOracle) -> None:
        if not given.is_role_preserving():
            raise ValueError("revision is defined for role-preserving qhorn")
        if given.n != oracle.n:
            raise ValueError("query and oracle disagree on n")
        self.given = canonicalize(given)
        self.oracle = oracle
        self.n = given.n
        self.repairs: list[str] = []
        self._learner = RolePreservingLearner(oracle)

    # ------------------------------------------------------------------
    def revise(self) -> RevisionResult:
        """Pull-driven entry point: drive :meth:`steps` with the oracle."""
        return drive(self, self.oracle)

    def learn(self) -> RevisionResult:
        """Learner-shaped alias for :meth:`revise`, so revisers drop into
        sessions and drivers anywhere a learner does."""
        return self.revise()

    def steps(self) -> Steps:
        """The reviser as a sans-io step generator (DESIGN.md §2e)."""
        heads = yield from self._revise_heads()
        universals = yield from self._revise_universals(heads)
        conjunctions = yield from self._revise_conjunctions(universals)
        query = QhornQuery.build(
            self.n,
            universals=[(sorted(u.body), u.head) for u in universals],
            existentials=[sorted(c) for c in conjunctions],
        )
        changed = canonicalize(query) != self.given
        if not changed:
            self.repairs.append("confirmed: the given query was correct")
        return RevisionResult(query=query, changed=changed, repairs=self.repairs)

    # ------------------------------------------------------------------
    # Step 1 — heads
    # ------------------------------------------------------------------
    def _revise_heads(self) -> Steps:
        given_heads = sorted({u.head for u in self.given.universals})
        heads: list[int] = []
        # One bulk round: the per-given-head confirmation questions are
        # fixed upfront and independent of each other.
        confirmations = yield from ask_round(
            [universal_head_question(self.n, h) for h in given_heads]
        )
        for h, is_answer in zip(given_heads, confirmations):
            if not is_answer:
                heads.append(h)
            else:
                self.repairs.append(f"dropped head x{h + 1}")
        non_heads = [v for v in range(self.n) if v not in set(given_heads)]
        if non_heads:
            top = bt.all_true(self.n)
            probe = Question.of(
                self.n,
                [top] + [bt.with_false(top, [v]) for v in non_heads],
            )
            if not (yield from ask_one(probe)):
                # Some non-head of the given query heads an expression in
                # the intent: binary-search all of them out (A4 refinement),
                # batching each FindAll level into one round.
                def contains_head_each(subsets) -> Steps:
                    answers = yield from ask_round(
                        [
                            Question.of(
                                self.n,
                                [top]
                                + [bt.with_false(top, [v]) for v in vs],
                            )
                            for vs in subsets
                        ]
                    )
                    return [not a for a in answers]

                new_heads = yield from find_all_batch_steps(
                    contains_head_each, non_heads
                )
                for h in new_heads:
                    self.repairs.append(f"added head x{h + 1}")
                heads.extend(new_heads)
        return sorted(heads)

    # ------------------------------------------------------------------
    # Step 2 — universal bodies
    # ------------------------------------------------------------------
    def _given_bodies(self, head: int) -> list[FrozenSet[int]]:
        return sorted(
            (u.body for u in self.given.universals if u.head == head),
            key=sorted,
        )

    def _revise_universals(self, heads: list[int]) -> Steps:
        from repro.core.expressions import UniversalHorn

        universals: list[UniversalHorn] = []
        for h in heads:
            verified: list[FrozenSet[int]] = []
            candidates = [
                b
                for b in self._given_bodies(h)
                if b and b <= frozenset(v for v in range(self.n)
                                        if v not in set(heads))
            ]
            lattice = BodyLattice(self.n, h, heads)
            for body in candidates:
                outcome = yield from self._check_body(lattice, body)
                if outcome is None:
                    from repro.core.expressions import var_names

                    self.repairs.append(
                        f"dropped body {var_names(body)} of x{h + 1}"
                    )
                    continue
                if outcome != body:
                    self.repairs.append(
                        f"shrank a body of x{h + 1} to "
                        f"{sorted(v + 1 for v in outcome)}"
                    )
                if outcome not in verified:
                    verified.append(outcome)
            bodies = yield from self._learner._learn_bodies_steps(
                h, heads, seed_bodies=verified, probe_roots_first=True
            )
            if len(bodies) > len(verified) and bodies != [frozenset()]:
                self.repairs.append(
                    f"found {len(bodies) - len(verified)} new bodies for "
                    f"x{h + 1}"
                )
            for b in bodies:
                universals.append(UniversalHorn(head=h, body=b))
        # keep only dominant expressions (a shrink may dominate a sibling)
        probe = QhornQuery(n=self.n, universals=frozenset(universals))
        return sorted(canonicalize(probe).universals)

    def _check_body(
        self, lattice: BodyLattice, body: FrozenSet[int]
    ) -> Steps:
        """Confirm ``body`` as a minimal intent body with two questions;
        shrink it in place when only a subset is required; ``None`` when
        the intent has no body inside it at all."""
        top = bt.all_true(self.n)
        u_tuple = lattice.embed(body)
        # N2: a non-answer means some intent body lies within `body`.
        if (yield from ask_one(Question.of(self.n, [top, u_tuple]))):
            return None
        # A2: an answer means no intent body is a strict subset.
        children = [
            lattice.embed([v for v in body if v != b]) for b in sorted(body)
        ]
        if (yield from ask_one(Question.of(self.n, [top, *children]))):
            return body
        # Shrink: classic greedy minimization restricted to `body` (Alg. 6).
        kept = list(sorted(body))
        for x in sorted(body):
            trial = [v for v in kept if v != x]
            t = lattice.embed(trial)
            if not (yield from ask_one(Question.of(self.n, [top, t]))):
                kept = trial
        return frozenset(kept)

    # ------------------------------------------------------------------
    # Step 3 — conjunctions
    # ------------------------------------------------------------------
    def _revise_conjunctions(self, universals) -> Steps:
        # Re-close the given conjunctions under the *revised* universals.
        candidates = sorted(
            {
                bt.mask_of(r3_closure(c, universals))
                for c in self.given.conjunctions
            }
        )
        verified: list[int] = []
        if candidates and (
            yield from ask_one(Question.of(self.n, candidates))
        ):
            # A1 passed: every intent conjunction is covered by some
            # candidate, so a children-replacement question isolates each.
            # The per-candidate questions are fixed once A1 passes — one
            # bulk round.
            replacements = [
                Question.of(
                    self.n,
                    [c for c in candidates if c != t]
                    + compliant_children(t, self.n, universals),
                )
                for t in candidates
            ]
            replacement_answers = yield from ask_round(replacements)
            for t, is_answer in zip(candidates, replacement_answers):
                if not is_answer:
                    verified.append(t)
        dropped = len(candidates) - len(verified)
        if dropped:
            self.repairs.append(
                f"re-deriving {dropped} unconfirmed conjunction(s)"
            )
        discovered = yield from self._learner._learn_conjunctions_steps(
            list(universals), seed_discovered=verified
        )
        conjunctions = {bt.true_set(t) for t in discovered}
        return [
            c
            for c in conjunctions
            if not any(c < other for other in conjunctions)
        ]


def revise_query(
    given: QhornQuery, oracle: MembershipOracle
) -> RevisionResult:
    """Revise ``given`` against the user behind ``oracle`` (§6)."""
    return QueryReviser(given, oracle).revise()
