"""Baseline learners the paper compares against (explicitly or implicitly).

* :class:`NaiveQhorn1Learner` — the "most straightforward way" of §3.1.2:
  serial dependence tests instead of binary search, Θ(n²) questions.  The
  E2 experiment measures the gap to the O(n lg n) learner.
* :class:`BruteForceLearner` — candidate elimination over an explicit
  hypothesis space.  Exact for any class but needs one question per
  eliminated candidate in the worst case; used to demonstrate the doubly
  exponential blow-up of unrestricted quantified queries (§2) and to
  cross-check the clever learners on tiny ``n``.
* :class:`HeadPairLearner` — a learner restricted to at most ``c`` tuples
  per question for Lemma 3.4's head-pair family, realizing the
  ``≈ n²/c²`` question count the lemma proves optimal.
"""

from __future__ import annotations

from itertools import combinations
from typing import Iterable, Sequence

from repro.core import tuples as bt
from repro.core.query import QhornQuery
from repro.core.tuples import Question
from repro.learning.qhorn1 import Qhorn1Group, Qhorn1Result
from repro.learning.questions import (
    existential_independence_question,
    single_false_question,
    universal_dependence_question,
    universal_head_question,
)
from repro.oracle.base import MembershipOracle
from repro.protocol.core import Steps, ask_one, ask_round
from repro.protocol.drivers import drive

__all__ = ["NaiveQhorn1Learner", "BruteForceLearner", "HeadPairLearner"]


class NaiveQhorn1Learner:
    """Serial-scan qhorn-1 learner: Θ(n²) membership questions.

    Implements the strawman of §3.1.2 ("we serially test if h depends on
    each variable e ∈ E") and its existential analogue: a full pairwise
    dependence graph over the existential variables, from which groups,
    bodies and heads are read off combinatorially.

    Every scan is non-adaptive — the whole question set is fixed upfront —
    so the learner emits exactly three batch rounds (heads, universal
    dependences, the pairwise graph).  It stays Θ(n²) in the paper's
    question count; batching only collapses the round-trips.
    """

    def __init__(self, oracle: MembershipOracle) -> None:
        self.oracle = oracle
        self.n = oracle.n

    def learn(self) -> Qhorn1Result:
        """Pull-driven entry point: drive :meth:`steps` with the oracle."""
        return drive(self, self.oracle)

    def steps(self) -> Steps:
        """The learner as a sans-io step generator (DESIGN.md §2e)."""
        n = self.n
        head_answers = yield from ask_round(
            [universal_head_question(n, v) for v in range(n)]
        )
        universal_heads = [
            v for v, is_answer in enumerate(head_answers) if not is_answer
        ]
        existential_vars = [
            v for v in range(n) if v not in set(universal_heads)
        ]

        groups: dict[frozenset[int], Qhorn1Group] = {}

        def group_for(body: frozenset[int]) -> Qhorn1Group:
            if body not in groups:
                groups[body] = Qhorn1Group(body=body)
            return groups[body]

        # Universal bodies: one dependence question per (head, variable),
        # all |heads|·|E| of them in one round.
        pairs = [(h, e) for h in universal_heads for e in existential_vars]
        pair_answers = yield from ask_round(
            [universal_dependence_question(n, h, [e]) for h, e in pairs]
        )
        dependence = dict(zip(pairs, pair_answers))
        universal_bodies: list[frozenset[int]] = []
        for h in universal_heads:
            body = frozenset(
                e for e in existential_vars if dependence[(h, e)]
            )
            group_for(body).universal_heads.add(h)
            if body and body not in universal_bodies:
                universal_bodies.append(body)
        universal_body_vars = {v for b in universal_bodies for v in b}

        # Full pairwise dependence graph over the existential variables,
        # C(|E|, 2) questions in one round.
        edges = list(combinations(existential_vars, 2))
        edge_answers = yield from ask_round(
            [
                existential_independence_question(n, [u], [v])
                for u, v in edges
            ]
        )
        depends: dict[int, set[int]] = {v: set() for v in existential_vars}
        for (u, v), independent in zip(edges, edge_answers):
            if not independent:
                depends[u].add(v)
                depends[v].add(u)

        unconstrained: set[int] = set()
        seen: set[int] = set()
        for start in existential_vars:
            if start in seen:
                continue
            component = self._component(start, depends)
            seen |= component
            if len(component) == 1:
                if component & universal_body_vars:
                    continue  # a body variable with no existential heads
                (e,) = component
                if (yield from ask_one(single_false_question(n, e))):
                    unconstrained.add(e)
                else:
                    group_for(frozenset()).existential_heads.add(e)
                continue
            body_part = component & universal_body_vars
            if body_part:
                # Existential heads attached to a universal body.
                for e in component - body_part:
                    group_for(frozenset(body_part)).existential_heads.add(e)
                continue
            heads = {
                v
                for v in component
                if any(
                    u != v and u not in depends[v] for u in component
                )
            }
            if not heads:
                # A clique: at most one head; whole component is the
                # conjunction regardless of which member heads it.
                head = max(component)
                body = frozenset(component - {head})
                group_for(body).existential_heads.add(head)
            else:
                body = frozenset(component - heads)
                g = group_for(body)
                g.existential_heads.update(heads)

        query = self._assemble(groups)
        return Qhorn1Result(
            n=n,
            query=query,
            groups=list(groups.values()),
            universal_heads=frozenset(universal_heads),
            unconstrained=frozenset(unconstrained),
        )

    @staticmethod
    def _component(start: int, depends: dict[int, set[int]]) -> set[int]:
        out = {start}
        stack = [start]
        while stack:
            v = stack.pop()
            for u in depends[v]:
                if u not in out:
                    out.add(u)
                    stack.append(u)
        return out

    def _assemble(
        self, groups: dict[frozenset[int], Qhorn1Group]
    ) -> QhornQuery:
        universals: list[tuple[Sequence[int], int]] = []
        existentials: list[Sequence[int]] = []
        for body, g in groups.items():
            for h in sorted(g.universal_heads):
                universals.append((sorted(body), h))
            for h in sorted(g.existential_heads):
                existentials.append(sorted(body | {h}))
        return QhornQuery.build(self.n, universals, existentials)


class BruteForceLearner:
    """Candidate elimination over an explicit hypothesis space.

    Greedily asks the pool question that best splits the remaining
    candidates (maximizing the guaranteed elimination), so its worst case on
    an adversarial family matches the information-theoretic floor.  On
    Theorem 2.1's ``Uni ∧ Alias`` family every question splits 1-vs-rest and
    the learner degrades to 2^n − 1 questions — the intractability result.
    """

    def __init__(
        self,
        oracle: MembershipOracle,
        candidates: Sequence[QhornQuery],
        question_pool: Iterable[Question],
    ) -> None:
        self.oracle = oracle
        self.candidates = list(candidates)
        self.pool = list(question_pool)
        self.questions_asked = 0

    def learn(self) -> QhornQuery:
        """Pull-driven entry point: drive :meth:`steps` with the oracle."""
        return drive(self, self.oracle)

    def steps(self) -> Steps:
        remaining = list(self.candidates)
        pool = list(self.pool)
        while len(remaining) > 1:
            best, best_score = None, -1
            for q in pool:
                yes = sum(1 for c in remaining if c.evaluate(q))
                score = min(yes, len(remaining) - yes)
                if score > best_score:
                    best, best_score = q, score
            if best is None or best_score == 0:
                raise RuntimeError(
                    "question pool cannot distinguish remaining candidates"
                )
            response = yield from ask_one(best)
            self.questions_asked += 1
            remaining = [c for c in remaining if c.evaluate(best) == response]
            pool.remove(best)
        if not remaining:
            raise RuntimeError("oracle inconsistent with candidate space")
        return remaining[0]


class HeadPairLearner:
    """Lemma 3.4's setting: learn which pair of variables heads the shared
    body ``C = X − {xi, xj}`` using at most ``c`` tuples per question.

    Strategy from the lemma's proof: only class-2 tuples (exactly one
    variable false) are informative, and a question ``{T_v : v ∈ H}`` is an
    answer iff both heads lie in ``H``.  Variables are split into blocks of
    ``⌊c/2⌋``; every block pair is probed, eliminating ``C(|H|, 2)`` pairs
    per non-answer — ``≈ n²/c²`` questions, matching the Ω(n²/c²) bound.
    """

    def __init__(self, oracle: MembershipOracle, max_tuples: int) -> None:
        if max_tuples < 2:
            raise ValueError("need at least two tuples per question")
        self.oracle = oracle
        self.n = oracle.n
        self.c = max_tuples
        self.questions_asked = 0

    def _ask_subset(self, vs: Sequence[int]) -> Steps:
        if len(vs) > self.c:
            raise AssertionError("question exceeds the tuple budget")
        top = bt.all_true(self.n)
        q = Question.of(self.n, [bt.with_false(top, [v]) for v in vs])
        self.questions_asked += 1
        return (yield from ask_one(q))

    def learn(self) -> tuple[int, int]:
        """Pull-driven entry point: drive :meth:`steps` with the oracle."""
        return drive(self, self.oracle)

    def steps(self) -> Steps:
        block_size = max(1, self.c // 2)
        blocks = [
            list(range(i, min(i + block_size, self.n)))
            for i in range(0, self.n, block_size)
        ]
        probes = [b for b in blocks] if block_size >= 2 else []
        probes += [a + b for a, b in combinations(blocks, 2)]
        for probe in probes:
            if len(probe) < 2:
                continue
            if (yield from self._ask_subset(probe)):
                return (yield from self._pinpoint(probe))
        raise RuntimeError("no head pair found; oracle outside the family")

    def _pinpoint(self, candidates: Sequence[int]) -> Steps:
        for i, j in combinations(candidates, 2):
            if (yield from self._ask_subset([i, j])):
                return (i, j)
        raise RuntimeError("inconsistent oracle during pinpointing")
