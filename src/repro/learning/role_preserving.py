"""Learning role-preserving qhorn queries (§3.2).

Two lattice-driven phases sit on top of the head-detection test of §3.1.1:

* **Universal Horn expressions** (§3.2.1, Thm 3.5): per head ``h``, search
  the body lattice (Fig. 5 — non-head variables, ``h`` fixed false, other
  heads fixed true).  A two-tuple question ``{1^n, t}`` is a non-answer iff
  the true variables of ``t`` contain a complete body, so one O(n) greedy
  minimization (Alg. 6) extracts a minimal body, and the cross-product
  *search roots* — one falsified variable per discovered body — enumerate
  the remaining incomparable bodies.  O(n^θ) questions per head.

* **Existential conjunctions** (§3.2.2, Thms 3.7/3.8): walk the full Boolean
  lattice top-to-bottom (Alg. 7).  The frontier plus the discovered
  distinguishing tuples always dominate every dominant conjunction of the
  normalized target; replacing a frontier tuple by its Horn-compliant
  children flips the question to a non-answer exactly when the tuple is
  distinguishing (Def. 3.5), and surviving children are pruned to a minimal
  set with binary search (Alg. 8).  O(kn lg n) questions.

The paper's optimization at the end of §3.2.2 is implemented: a frontier
tuple whose true set equals the (R3-closed) guarantee clause of a learned
universal expression is a known conjunction of the normalized query, so it
is recorded without spending a question and its (dominated) downset is never
searched.

Sans-io (DESIGN.md §2e): the learner body is the
:meth:`RolePreservingLearner.steps` generator; ``learn()`` drives it
against the construction oracle, bit-identical to the historical pull
path.  The body/conjunction subroutines are step generators too, shared
with the reviser (:mod:`repro.learning.revision`); the plain-callable
``_learn_bodies``/``_learn_conjunctions`` faces drive them inline for
white-box callers.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import product
from typing import FrozenSet, Sequence

from repro.core import tuples as bt
from repro.core.expressions import UniversalHorn
from repro.core.normalize import r3_closure
from repro.core.query import QhornQuery
from repro.core.tuples import Question
from repro.lattice.boolean_lattice import BodyLattice, compliant_children
from repro.learning.questions import two_tuple_question, universal_head_question
from repro.learning.search import minimal_satisfying_subset_steps
from repro.oracle.base import MembershipOracle
from repro.protocol.core import Steps, ask_one, ask_round
from repro.protocol.drivers import drive

__all__ = [
    "RolePreservingResult",
    "RolePreservingLearner",
    "learn_role_preserving",
]


@dataclass
class RolePreservingResult:
    """Learned query plus the artifacts the proofs talk about."""

    n: int
    query: QhornQuery
    heads: frozenset[int]
    bodies_per_head: dict[int, list[FrozenSet[int]]]
    distinguishing_tuples: frozenset[int]

    @property
    def causal_density(self) -> int:
        return max(
            (len(bs) for bs in self.bodies_per_head.values()), default=0
        )


class RolePreservingLearner:
    """Exact learner for role-preserving qhorn targets.

    ``max_bodies_per_head`` bounds the body search (default ``n``), guarding
    against non-role-preserving oracles that would otherwise generate an
    unbounded stream of "new" bodies.
    """

    def __init__(
        self,
        oracle: MembershipOracle,
        max_bodies_per_head: int | None = None,
        prune: str = "binary",
        use_guarantee_shortcut: bool = True,
    ) -> None:
        if prune not in ("binary", "linear"):
            raise ValueError("prune must be 'binary' or 'linear'")
        self.oracle = oracle
        self.n = oracle.n
        self.max_bodies = max_bodies_per_head or self.n
        self.prune = prune
        self.use_guarantee_shortcut = use_guarantee_shortcut

    # ------------------------------------------------------------------
    def learn(self) -> RolePreservingResult:
        """Pull-driven entry point: drive :meth:`steps` with the oracle."""
        return drive(self, self.oracle)

    def steps(self) -> Steps:
        """The learner as a sans-io step generator (DESIGN.md §2e)."""
        # Bulk round 1 (§3.1.1): all n head questions are fixed upfront.
        head_answers = yield from ask_round(
            [universal_head_question(self.n, v) for v in range(self.n)]
        )
        heads = [v for v, is_answer in enumerate(head_answers) if not is_answer]
        # Bulk round 2: one bodyless test per head — the {1^n, bottom}
        # questions depend only on the head set, not on each other.
        bottom_answers = yield from ask_round(
            [
                two_tuple_question(
                    self.n, BodyLattice(self.n, h, heads).bottom()
                )
                for h in heads
            ]
        )
        bodies_per_head: dict[int, list[FrozenSet[int]]] = {}
        universals: list[UniversalHorn] = []
        for h, bottom_is_answer in zip(heads, bottom_answers):
            bodies = yield from self._learn_bodies_steps(
                h, heads, bottom_is_answer=bottom_is_answer
            )
            bodies_per_head[h] = bodies
            universals.extend(
                UniversalHorn(head=h, body=body) for body in bodies
            )
        discovered = yield from self._learn_conjunctions_steps(universals)
        conjunctions = _maximal(
            {bt.true_set(t) for t in discovered}
        )
        query = QhornQuery.build(
            self.n,
            universals=[(sorted(u.body), u.head) for u in universals],
            existentials=[sorted(c) for c in conjunctions],
        )
        return RolePreservingResult(
            n=self.n,
            query=query,
            heads=frozenset(heads),
            bodies_per_head=bodies_per_head,
            distinguishing_tuples=frozenset(discovered),
        )

    # ------------------------------------------------------------------
    # §3.2.1 — universal Horn expressions
    # ------------------------------------------------------------------
    def _learn_bodies(
        self,
        head: int,
        all_heads: Sequence[int],
        seed_bodies: Sequence[FrozenSet[int]] = (),
        probe_roots_first: bool = False,
        bottom_is_answer: bool | None = None,
    ) -> list[FrozenSet[int]]:
        """Plain-callable face of :meth:`_learn_bodies_steps`, answered by
        the construction oracle (white-box tests, ad-hoc callers)."""
        return drive(
            self._learn_bodies_steps(
                head,
                all_heads,
                seed_bodies=seed_bodies,
                probe_roots_first=probe_roots_first,
                bottom_is_answer=bottom_is_answer,
            ),
            self.oracle,
        )

    def _learn_bodies_steps(
        self,
        head: int,
        all_heads: Sequence[int],
        seed_bodies: Sequence[FrozenSet[int]] = (),
        probe_roots_first: bool = False,
        bottom_is_answer: bool | None = None,
    ) -> Steps:
        """Find all dominant bodies of ``head``.

        ``seed_bodies`` warm-starts the search with bodies already known to
        be minimal bodies of the target (used by the revision algorithm);
        only the cross-product roots beyond them are explored.  With
        ``probe_roots_first`` a single combined question over all current
        roots is asked first — if it is an answer, no further body exists
        and the search ends after one question (the A3 trick of §4).
        ``bottom_is_answer`` injects a pre-batched answer to the bodyless
        test (:meth:`steps` asks one round for all heads); when ``None``
        the question is asked here.  The root exploration itself stays
        sequential: each discovered body rewrites the pending root set, so
        batching roots would ask questions the sequential search never
        pays for.
        """
        lattice = BodyLattice(self.n, head, all_heads)
        # Bodyless test: {1^n, tuple with h and all non-heads false}.
        if bottom_is_answer is None:
            bottom_is_answer = yield from ask_one(
                two_tuple_question(self.n, lattice.bottom())
            )
        if not bottom_is_answer:
            return [frozenset()]
        non_heads = list(lattice.non_heads)
        bodies: list[FrozenSet[int]] = [frozenset(b) for b in seed_bodies]
        asked: set[frozenset[int]] = set()
        empty_exclusions: list[frozenset[int]] = []
        pending: list[frozenset[int]] = (
            [frozenset(choice) for choice in product(*bodies)]
            if bodies
            else [frozenset()]
        )
        if probe_roots_first and bodies and pending:
            combined = Question.of(
                self.n,
                [bt.all_true(self.n)]
                + [
                    lattice.embed([v for v in non_heads if v not in excl])
                    for excl in pending
                ],
            )
            if (yield from ask_one(combined)):
                return bodies  # no root hides a new body
        while pending:
            exclusion = pending.pop()
            if exclusion in asked:
                continue
            asked.add(exclusion)
            if any(e <= exclusion for e in empty_exclusions):
                continue  # a larger cover already contained no body
            cover = [v for v in non_heads if v not in exclusion]
            root = lattice.embed(cover)
            if (yield from ask_one(two_tuple_question(self.n, root))):
                empty_exclusions.append(exclusion)
                continue
            body = yield from self._minimize_body(lattice, cover)
            bodies.append(body)
            if len(bodies) >= self.max_bodies:
                break
            # Search roots (Thm 3.5): one falsified variable per known body.
            pending = [
                frozenset(choice)
                for choice in product(*bodies)
                if frozenset(choice) not in asked
            ]
        return bodies

    def _minimize_body(
        self, lattice: BodyLattice, cover: Sequence[int]
    ) -> Steps:
        """Alg. 6: greedily drop variables while the question stays a
        non-answer; what remains is one minimal (dominant) body."""
        excluded: set[int] = set()
        for x in cover:
            trial = [v for v in cover if v not in excluded and v != x]
            t = lattice.embed(trial)
            if not (yield from ask_one(two_tuple_question(self.n, t))):
                excluded.add(x)
        return frozenset(v for v in cover if v not in excluded)

    # ------------------------------------------------------------------
    # §3.2.2 — existential conjunctions
    # ------------------------------------------------------------------
    def _learn_conjunctions(
        self,
        universals: Sequence[UniversalHorn],
        seed_discovered: Sequence[int] = (),
    ) -> list[int]:
        """Plain-callable face of :meth:`_learn_conjunctions_steps`."""
        return drive(
            self._learn_conjunctions_steps(
                universals, seed_discovered=seed_discovered
            ),
            self.oracle,
        )

    def _learn_conjunctions_steps(
        self,
        universals: Sequence[UniversalHorn],
        seed_discovered: Sequence[int] = (),
    ) -> Steps:
        """Top-down lattice walk for the dominant conjunctions (Alg. 7).

        ``seed_discovered`` pre-populates the discovered set with tuples
        already verified to be distinguishing for the target; regions they
        cover are pruned immediately, which is what makes revision cheap.
        """
        guarantee_closures = {
            r3_closure(u.variables, universals) for u in universals
        }
        discovered: list[int] = list(dict.fromkeys(seed_discovered))
        frontier: list[int] = [bt.all_true(self.n)]
        while frontier:
            next_frontier: list[int] = []
            for i, t in enumerate(frontier):
                if (
                    self.use_guarantee_shortcut
                    and bt.true_set(t) in guarantee_closures
                ):
                    # Known conjunction of the normalized query; its downset
                    # is dominated (end-of-§3.2.2 optimization).
                    discovered.append(t)
                    continue
                rest = frontier[i + 1 :]
                children = compliant_children(t, self.n, universals)
                fixed = set(discovered) | set(rest) | set(next_frontier)

                def is_answer(kept: Sequence[int], fixed=fixed) -> Steps:
                    return (
                        yield from ask_one(
                            Question.of(self.n, fixed | set(kept))
                        )
                    )

                if (yield from is_answer(children)):
                    if self.prune == "binary":
                        kept = yield from minimal_satisfying_subset_steps(
                            is_answer, children
                        )
                    else:
                        kept = yield from _linear_prune_steps(
                            is_answer, children
                        )
                    next_frontier.extend(
                        c for c in kept if c not in fixed
                    )
                else:
                    discovered.append(t)
            frontier = next_frontier
        return discovered


def _maximal(sets: set[frozenset[int]]) -> list[frozenset[int]]:
    return [s for s in sets if not any(s < other for other in sets)]


def _linear_prune_steps(is_answer, children: Sequence[int]) -> Steps:
    """§3.2.2's first pruning strategy, before the binary-search upgrade:
    "we remove one tuple from the question set and test its membership",
    putting it back when the question flips to a non-answer.  O(|children|)
    questions instead of O(|kept| lg |children|) — ablation E18."""
    kept = list(children)
    for c in list(children):
        trial = [x for x in kept if x != c]
        if (yield from is_answer(trial)):
            kept = trial
    return kept


def learn_role_preserving(
    oracle: MembershipOracle, max_bodies_per_head: int | None = None
) -> RolePreservingResult:
    """Convenience wrapper: learn a role-preserving target behind ``oracle``."""
    return RolePreservingLearner(oracle, max_bodies_per_head).learn()
