"""Learning qhorn-1 queries with O(n lg n) membership questions (§3.1).

The learner decomposes query learning into the paper's three tasks:

1. **Classify variables** into universal head variables vs existential
   variables with one ``{1^n, only-x-false}`` question each (§3.1.1).
2. **Learn universal bodies** (§3.1.2, Algs. 1–3): for each universal head,
   first binary-search the already-discovered bodies (a shared body costs
   one extra O(lg n) search), otherwise ``FindAll`` its body variables among
   the existential variables with universal dependence questions (Def. 3.1).
3. **Learn existential Horn expressions** (§3.1.3, Algs. 4–5): group the
   remaining variables via existential independence questions (Def. 3.2),
   pinpoint head variables with matrix questions (Def. 3.3, Lemma 3.3), and
   classify the rest pairwise.

Deviation from the paper (documented in DESIGN.md): the paper's convention
has every proposition appear in the query.  We additionally disambiguate a
fully independent variable ``e`` between ``∃e`` and "unconstrained" with one
single-tuple question, adding at most ``n`` questions overall and keeping
the O(n lg n) bound.

The learner asks O(n lg n) questions with at most O(n) tuples each and runs
in polynomial time (Theorem 3.1).

The pipeline is *sans-io and batch-first* (DESIGN.md §2b/§2e): the learner
body is the :meth:`Qhorn1Learner.steps` generator, which yields
:class:`~repro.protocol.core.Round` objects — every phase whose question
set does not depend on its own answers is one round (the universal-head
scan is one batch of ``n`` questions, each FindAll of dependence probes
batches level by level via
:func:`~repro.learning.search.find_all_batch_steps`, and the pairwise
head-splitting classification is one batch per group), while the adaptive
binary-search chains (*Find*, *GetHead*) remain single-question rounds by
necessity.  :meth:`Qhorn1Learner.learn` drives those steps against the
construction oracle, reproducing the historical pull behaviour
bit-identically; question multiset and the learned query are unchanged.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import partial
from typing import FrozenSet, Sequence

from repro.core.query import QhornQuery
from repro.learning.questions import (
    existential_independence_question,
    matrix_question,
    single_false_question,
    universal_dependence_question,
    universal_head_question,
)
from repro.learning.search import (
    find_all_batch_steps,
    find_one_steps,
    minimal_prefix_steps,
)
from repro.oracle.base import MembershipOracle
from repro.protocol.core import Steps, ask_one, ask_round
from repro.protocol.drivers import drive

__all__ = ["Qhorn1Group", "Qhorn1Result", "Qhorn1Learner", "learn_qhorn1"]


@dataclass
class Qhorn1Group:
    """One part of the learned variable partition (Fig. 2's terminology):
    a shared body with its universally / existentially quantified heads."""

    body: FrozenSet[int] = frozenset()
    universal_heads: set[int] = field(default_factory=set)
    existential_heads: set[int] = field(default_factory=set)


@dataclass
class Qhorn1Result:
    """Outcome of learning: the query plus its structural decomposition."""

    n: int
    query: QhornQuery
    groups: list[Qhorn1Group]
    universal_heads: frozenset[int]
    unconstrained: frozenset[int]


class Qhorn1Learner:
    """Exact learner for qhorn-1 targets behind a membership oracle.

    ``use_shared_body_shortcut`` controls Alg. 1's first step (binary search
    over already-discovered bodies before a fresh ``FindAll``).  Disabling
    it re-derives every shared body from scratch — the ablation of
    Lemma 3.2's "at most 1·lg n questions per additional head" claim.
    """

    def __init__(
        self,
        oracle: MembershipOracle,
        use_shared_body_shortcut: bool = True,
    ) -> None:
        self.oracle = oracle
        self.n = oracle.n
        self.use_shared_body_shortcut = use_shared_body_shortcut

    # -- question predicates (step generators) ------------------------------
    def _depends_universally(self, head: int, vs: Sequence[int]) -> Steps:
        """Answer to a universal dependence question = body intersects vs."""
        return (
            yield from ask_one(
                universal_dependence_question(self.n, head, vs)
            )
        )

    def _depends_universally_each(
        self, head: int, subsets: Sequence[Sequence[int]]
    ) -> Steps:
        """One round of universal dependence questions for ``head``."""
        return (
            yield from ask_round(
                [
                    universal_dependence_question(self.n, head, vs)
                    for vs in subsets
                ]
            )
        )

    def _depends_existentially(self, x: int, vs: Sequence[int]) -> Steps:
        """Non-answer to an independence question = some conjunction
        contains ``x`` and intersects ``vs``."""
        answer = yield from ask_one(
            existential_independence_question(self.n, [x], vs)
        )
        return not answer

    def _depends_existentially_each(
        self, x: int, subsets: Sequence[Sequence[int]]
    ) -> Steps:
        """One round of existential independence questions around ``x``."""
        answers = yield from ask_round(
            [
                existential_independence_question(self.n, [x], vs)
                for vs in subsets
            ]
        )
        return [not a for a in answers]

    # -- learning tasks -----------------------------------------------------
    def learn(self) -> Qhorn1Result:
        """Pull-driven entry point: drive :meth:`steps` with the oracle."""
        return drive(self, self.oracle)

    def steps(self) -> Steps:
        """The learner as a sans-io step generator (DESIGN.md §2e)."""
        # Task 1 (§3.1.1): the universal-head scan is one bulk round — the
        # n head questions are fixed upfront and independent of each other.
        head_answers = yield from ask_round(
            [universal_head_question(self.n, v) for v in range(self.n)]
        )
        universal_heads = [
            v for v, is_answer in enumerate(head_answers) if not is_answer
        ]
        existential_vars = [
            v for v in range(self.n) if v not in set(universal_heads)
        ]

        groups: dict[FrozenSet[int], Qhorn1Group] = {}
        known_bodies: list[FrozenSet[int]] = []

        def group_for(body: FrozenSet[int]) -> Qhorn1Group:
            if body not in groups:
                groups[body] = Qhorn1Group(body=body)
                if body:
                    known_bodies.append(body)
            return groups[body]

        # Task 2 (Alg. 1): bodies of universal head variables.
        for h in universal_heads:
            body = yield from self._find_universal_body(
                h, existential_vars, known_bodies
            )
            group_for(body).universal_heads.add(h)

        # Task 3 (Alg. 4): existential Horn expressions.
        universal_body_vars = {v for b in known_bodies for v in b}
        available = [
            v for v in existential_vars if v not in universal_body_vars
        ]
        processed: set[int] = set()
        unconstrained: set[int] = set()
        for e in available:
            if e in processed:
                continue
            processed.add(e)
            body = yield from self._find_known_body_of(e, known_bodies)
            if body is not None:
                group_for(body).existential_heads.add(e)
                continue
            remaining = [
                v for v in available if v not in processed
            ]
            dependents = yield from find_all_batch_steps(
                partial(self._depends_existentially_each, e),
                remaining,
            )
            if not dependents:
                if (yield from ask_one(single_false_question(self.n, e))):
                    unconstrained.add(e)
                else:
                    group_for(frozenset()).existential_heads.add(e)
                continue
            processed.update(dependents)
            heads = yield from self._split_heads(e, sorted(dependents))
            if heads:
                body = frozenset(dependents) - heads | {e}
                g = group_for(frozenset(body))
                g.existential_heads.update(heads)
            else:
                # At most one head among the dependents: treating ``e`` as
                # the head of body D yields the same conjunction (Lemma 3.3
                # discussion), so the learned query is still exact.
                g = group_for(frozenset(dependents))
                g.existential_heads.add(e)

        query = self._assemble(groups)
        return Qhorn1Result(
            n=self.n,
            query=query,
            groups=list(groups.values()),
            universal_heads=frozenset(universal_heads),
            unconstrained=frozenset(unconstrained),
        )

    # -- subroutines ---------------------------------------------------------
    def _find_universal_body(
        self,
        head: int,
        existential_vars: Sequence[int],
        known_bodies: list[FrozenSet[int]],
    ) -> Steps:
        """Alg. 1: search known bodies first, then FindAll a fresh body.

        The shared-body shortcut's binary search (*Find*) is adaptive and
        stays sequential; both FindAll variants batch level by level.
        """
        if not self.use_shared_body_shortcut:
            body = yield from find_all_batch_steps(
                partial(self._depends_universally_each, head),
                list(existential_vars),
            )
            return frozenset(body)
        known_vars = sorted({v for b in known_bodies for v in b})
        if known_vars:
            b = yield from find_one_steps(
                partial(self._depends_universally, head), known_vars
            )
            if b is not None:
                return next(body for body in known_bodies if b in body)
        known = set(known_vars)
        fresh_candidates = [v for v in existential_vars if v not in known]
        body = yield from find_all_batch_steps(
            partial(self._depends_universally_each, head),
            fresh_candidates,
        )
        return frozenset(body)

    def _find_known_body_of(
        self, e: int, known_bodies: list[FrozenSet[int]]
    ) -> Steps:
        """Alg. 4's first step: is ``e`` an existential head of a known body?"""
        known_vars = sorted({v for b in known_bodies for v in b})
        if not known_vars:
            return None
        b = yield from find_one_steps(
            partial(self._depends_existentially, e), known_vars
        )
        if b is None:
            return None
        return next(body for body in known_bodies if b in body)

    def _split_heads(self, e: int, dependents: list[int]) -> Steps:
        """Alg. 5 (*GetHead*) + pairwise classification (Lemma 3.3).

        Returns the existential heads among ``dependents`` — empty when the
        matrix question certifies at most one head is present.
        """

        def matrix_is_answer(vs: Sequence[int]) -> Steps:
            return (yield from ask_one(matrix_question(self.n, vs)))

        prefix = yield from minimal_prefix_steps(matrix_is_answer, dependents)
        if prefix is None:
            return frozenset()
        h1 = prefix[-1]
        heads = {h1}
        # Pairwise classification against h1 (Lemma 3.3): the |D|-1
        # questions are fixed once h1 is known — one bulk round.
        others = [d for d in dependents if d != h1]
        depends_each = yield from self._depends_existentially_each(
            h1, [[d] for d in others]
        )
        for d, depends in zip(others, depends_each):
            if not depends:
                heads.add(d)
        return frozenset(heads)

    def _assemble(
        self, groups: dict[FrozenSet[int], Qhorn1Group]
    ) -> QhornQuery:
        universals: list[tuple[Sequence[int], int]] = []
        existentials: list[Sequence[int]] = []
        for body, g in groups.items():
            for h in sorted(g.universal_heads):
                universals.append((sorted(body), h))
            for h in sorted(g.existential_heads):
                existentials.append(sorted(body | {h}))
        return QhornQuery.build(self.n, universals, existentials)


def learn_qhorn1(oracle: MembershipOracle) -> Qhorn1Result:
    """Convenience wrapper: learn a qhorn-1 target behind ``oracle``."""
    return Qhorn1Learner(oracle).learn()
