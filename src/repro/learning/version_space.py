"""Version-space tracking: the UI view of "what could you still mean?".

DataPlay-style interfaces benefit from showing the user how their answers
narrow the space of possible intents (§1's motivation).  A
:class:`VersionSpace` maintains the set of class members consistent with
the responses so far — feasible exactly for the enumerable classes
(role-preserving qhorn at n ≤ 3) and by sampling beyond.

It also implements the information-optimal *next question* (the object
whose answer halves the remaining candidates), which lets E20 measure how
close the paper's structured learners come to the information-theoretic
floor on the enumerable class.

Candidate filtering is mask-native: every evaluation goes through the
candidates' :class:`~repro.core.query.CompiledQuery` forms (memoized per
query), and :meth:`VersionSpace.record_many` /
:meth:`VersionSpace.record_from` consume a whole response batch — e.g. a
verification set answered in one :func:`~repro.oracle.base.ask_all` round
— in a single filtering pass.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Sequence

from repro.core.normalize import canonicalize, enumerate_objects
from repro.core.generators import enumerate_role_preserving
from repro.core.query import QhornQuery
from repro.core.tuples import Question
from repro.oracle.base import ask_all

__all__ = ["VersionSpace", "SplitQuality"]


@dataclass(frozen=True)
class SplitQuality:
    """How a candidate question would divide the current version space."""

    question: Question
    answers: int
    non_answers: int

    @property
    def guaranteed_elimination(self) -> int:
        return min(self.answers, self.non_answers)

    @property
    def entropy_bits(self) -> float:
        total = self.answers + self.non_answers
        if not self.answers or not self.non_answers:
            return 0.0
        pa = self.answers / total
        return -(pa * math.log2(pa) + (1 - pa) * math.log2(1 - pa))


@dataclass
class VersionSpace:
    """The set of hypotheses consistent with the responses so far."""

    candidates: list[QhornQuery]
    history: list[tuple[Question, bool]] = field(default_factory=list)

    @classmethod
    def full_role_preserving(cls, n: int) -> "VersionSpace":
        """Start from every semantically distinct role-preserving query on
        ``n`` variables (n ≤ 3)."""
        return cls(candidates=list(enumerate_role_preserving(n)))

    @property
    def n(self) -> int:
        if not self.candidates:
            raise ValueError("version space is empty")
        return self.candidates[0].n

    @property
    def size(self) -> int:
        return len(self.candidates)

    def record(self, question: Question, response: bool) -> int:
        """Filter by one response; returns how many candidates died."""
        return self.record_many([question], [response])

    def record_many(
        self, questions: Sequence[Question], responses: Sequence[bool]
    ) -> int:
        """Filter by a whole response batch in one pass; returns how many
        candidates died.

        Equivalent to recording each (question, response) pair in order —
        consistency with a conjunction of constraints is order-independent
        — but each candidate compiles once and every question's mask set
        is shared across candidates.
        """
        if len(questions) != len(responses):
            raise ValueError("questions and responses must align")
        before = len(self.candidates)
        pairs = [(q.tuples, r) for q, r in zip(questions, responses)]
        survivors = []
        for c in self.candidates:
            compiled = c.compile()
            if all(compiled.evaluate(masks) == r for masks, r in pairs):
                survivors.append(c)
        self.candidates = survivors
        self.history.extend(zip(questions, responses))
        if not self.candidates:
            raise ValueError(
                "responses are inconsistent with every class member"
            )
        return before - len(self.candidates)

    def record_from(
        self, oracle, questions: Sequence[Question]
    ) -> int:
        """Ask ``questions`` as one batch and record every response."""
        return self.record_many(questions, ask_all(oracle, questions))

    def identified(self) -> QhornQuery | None:
        """The unique remaining query, if the space has converged."""
        forms = {canonicalize(c) for c in self.candidates}
        if len(forms) == 1:
            return self.candidates[0]
        return None

    def split_quality(self, question: Question) -> SplitQuality:
        masks = question.tuples
        yes = sum(1 for c in self.candidates if c.compile().evaluate(masks))
        return SplitQuality(
            question=question,
            answers=yes,
            non_answers=len(self.candidates) - yes,
        )

    def best_question(self) -> SplitQuality | None:
        """The object splitting the remaining candidates most evenly.

        Scans all ``2^(2^n)`` objects, so only n ≤ 3 is practical; returns
        ``None`` once no question distinguishes the survivors (they are all
        equivalent).
        """
        best: SplitQuality | None = None
        for obj in enumerate_objects(self.n, include_empty=True):
            q = Question.of(self.n, obj)
            split = self.split_quality(q)
            if split.guaranteed_elimination == 0:
                continue
            if (
                best is None
                or split.guaranteed_elimination > best.guaranteed_elimination
            ):
                best = split
        return best

    def run_to_identification(self, oracle, max_questions: int = 64):
        """Drive the optimal-split strategy against an oracle until the
        space converges; returns (query, questions_asked)."""
        asked = 0
        while self.identified() is None:
            if asked >= max_questions:
                raise RuntimeError("question budget exhausted")
            split = self.best_question()
            if split is None:
                break
            self.record(split.question, oracle.ask(split.question))
            asked += 1
        result = self.identified()
        if result is None:  # pragma: no cover - defensive
            raise RuntimeError("version space failed to converge")
        return result, asked
