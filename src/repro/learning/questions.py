"""Constructors for the paper's membership-question shapes (§3.1, §3.2).

Each helper builds a :class:`~repro.core.tuples.Question` in O(n) or
O(n·tuples) time, satisfying the paper's interactive-performance requirement
that question generation be polynomial (§2.1.2).
"""

from __future__ import annotations

from typing import Iterable

from repro.core import tuples as bt
from repro.core.tuples import Question

__all__ = [
    "universal_head_question",
    "universal_dependence_question",
    "existential_independence_question",
    "matrix_question",
    "single_false_question",
    "two_tuple_question",
]


def universal_head_question(n: int, variable: int) -> Question:
    """§3.1.1: ``{1^n, tuple with only `variable` false}``.

    A *non-answer* reveals ``variable`` to be a universal head: with all
    potential body variables true and every other head neutralized, the only
    way to reject the set is a universal expression on ``variable``.
    """
    top = bt.all_true(n)
    return Question.of(n, [top, bt.with_false(top, [variable])])


def universal_dependence_question(
    n: int, head: int, variables: Iterable[int]
) -> Question:
    """Def. 3.1: ``{1^n, tuple with head and V false, rest true}``.

    An *answer* means some body variable of ``head`` lies in ``V`` (the
    falsified body lets the head go false); a *non-answer* means the head's
    body avoids ``V`` entirely.
    """
    top = bt.all_true(n)
    t = bt.with_false(top, [head, *variables])
    return Question.of(n, [top, t])


def existential_independence_question(
    n: int, xs: Iterable[int], ys: Iterable[int]
) -> Question:
    """Def. 3.2: two tuples, one with ``X`` false, one with ``Y`` false.

    An *answer* means no existential conjunction straddles ``X`` and ``Y``;
    a *non-answer* means some conjunction needs a variable from each (the
    variables "depend on each other").
    """
    xs, ys = list(xs), list(ys)
    if set(xs) & set(ys):
        raise ValueError("independence question requires disjoint sets")
    top = bt.all_true(n)
    return Question.of(n, [bt.with_false(top, xs), bt.with_false(top, ys)])


def matrix_question(n: int, variables: Iterable[int]) -> Question:
    """Def. 3.3: one tuple per variable ``d``, with exactly ``d`` false.

    Over the dependents ``D`` of some variable, an *answer* certifies that
    ``D`` contains at least two existential head variables (Lemma 3.3).
    """
    vs = list(variables)
    if not vs:
        raise ValueError("matrix question needs at least one variable")
    top = bt.all_true(n)
    return Question.of(n, [bt.with_false(top, [d]) for d in vs])


def single_false_question(n: int, variable: int) -> Question:
    """``{tuple with only `variable` false}`` — a single-tuple question.

    Distinguishes ``∃x`` from "x unconstrained" for a variable that turned
    out independent of everything else (a case the paper's all-variables-
    used convention leaves implicit).
    """
    return Question.of(n, [bt.with_false(bt.all_true(n), [variable])])


def two_tuple_question(n: int, t: int) -> Question:
    """``{1^n, t}`` — the workhorse of the role-preserving body search."""
    return Question.of(n, [bt.all_true(n), t])
