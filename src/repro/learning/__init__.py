"""Query learning algorithms (§3): qhorn-1, role-preserving, baselines,
plus the §6 extensions (revision, expression questions, PAC, class check).
"""

from repro.learning.baselines import (
    BruteForceLearner,
    HeadPairLearner,
    NaiveQhorn1Learner,
)
from repro.learning.class_check import ClassCheckReport, check_class_membership
from repro.learning.expression_learner import (
    ExpressionLearner,
    ExpressionLearnerResult,
)
from repro.learning.pac import (
    PacLearner,
    PacResult,
    estimate_error,
    pac_learn,
    pac_sample_bound,
    random_object_sampler,
)
from repro.learning.qhorn1 import (
    Qhorn1Group,
    Qhorn1Learner,
    Qhorn1Result,
    learn_qhorn1,
)
from repro.learning.revision import (
    QueryReviser,
    RevisionResult,
    revise_query,
)
from repro.learning.role_preserving import (
    RolePreservingLearner,
    RolePreservingResult,
    learn_role_preserving,
)
from repro.learning.version_space import SplitQuality, VersionSpace

__all__ = [
    "ClassCheckReport",
    "ExpressionLearner",
    "ExpressionLearnerResult",
    "PacLearner",
    "PacResult",
    "QueryReviser",
    "RevisionResult",
    "SplitQuality",
    "VersionSpace",
    "check_class_membership",
    "estimate_error",
    "pac_learn",
    "pac_sample_bound",
    "random_object_sampler",
    "revise_query",
    "BruteForceLearner",
    "HeadPairLearner",
    "NaiveQhorn1Learner",
    "Qhorn1Group",
    "Qhorn1Learner",
    "Qhorn1Result",
    "RolePreservingLearner",
    "RolePreservingResult",
    "learn_qhorn1",
    "learn_role_preserving",
]
