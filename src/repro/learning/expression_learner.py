"""Learning role-preserving queries from expression questions (§6).

The companion learner to :class:`~repro.oracle.expression.ExpressionOracle`:
instead of showing the user example objects, it asks directly whether
candidate expressions must hold.  Both predicates are monotone —

* ``requires_implication(V, h)`` is monotone increasing in ``V`` (some body
  of ``h`` lies inside ``V``), matching Def. 3.1's dependence structure, so
  the same greedy minimization + cross-product root search recovers all
  dominant bodies;
* ``requires_conjunction(C)`` is monotone *decreasing* in ``C`` (the
  required conjunction family is downward closed), so dominant conjunctions
  are the family's maximal sets, found by greedy growth plus root-style
  restarts (the dual of the body search).

Each expression question yields one bit, exactly like a membership
question, so the asymptotics match §3.2; experiment E16 measures the
constant-factor savings (no all-true tuples, no matrix questions, no
pruning overhead).

Sans-io (DESIGN.md §2e): the learner emits
:class:`~repro.oracle.expression.ExpressionQuestion` payloads through the
same :class:`~repro.protocol.core.Round` protocol as the membership
learners — drivers dispatch them onto an expression oracle's methods one
call per question, exactly as the pull-based code did.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import product
from typing import FrozenSet, Iterable

from repro.core.query import QhornQuery
from repro.oracle.expression import (
    CountingExpressionOracle,
    ExpressionOracle,
    ExpressionQuestion,
)
from repro.protocol.core import Steps, ask_one
from repro.protocol.drivers import drive

__all__ = ["ExpressionLearnerResult", "ExpressionLearner"]


@dataclass
class ExpressionLearnerResult:
    query: QhornQuery
    questions_asked: int


class ExpressionLearner:
    """Exact learner over expression questions for role-preserving qhorn."""

    def __init__(
        self, oracle: ExpressionOracle | CountingExpressionOracle
    ) -> None:
        self.oracle = (
            oracle
            if isinstance(oracle, CountingExpressionOracle)
            else CountingExpressionOracle(oracle)
        )
        self.n = oracle.n
        #: Expression questions emitted by the running :meth:`steps` pass.
        self._asked = 0

    def learn(self) -> ExpressionLearnerResult:
        """Pull-driven entry point: drive :meth:`steps` with the oracle."""
        return drive(self, self.oracle)

    # -- question predicates (step generators) --------------------------
    def _requires_implication(self, body: Iterable[int], head: int) -> Steps:
        self._asked += 1
        return (
            yield from ask_one(ExpressionQuestion.implication(body, head))
        )

    def _requires_conjunction(self, variables: Iterable[int]) -> Steps:
        self._asked += 1
        return (
            yield from ask_one(ExpressionQuestion.conjunction(variables))
        )

    def steps(self) -> Steps:
        """The learner as a sans-io step generator (DESIGN.md §2e)."""
        self._asked = 0
        heads = []
        for h in range(self.n):
            required = yield from self._requires_implication(
                [v for v in range(self.n) if v != h], h
            )
            if required:
                heads.append(h)
        universals: list[tuple[list[int], int]] = []
        for h in heads:
            bodies = yield from self._learn_bodies(h, heads)
            for body in bodies:
                universals.append((sorted(body), h))
        conjunctions = yield from self._learn_conjunctions()
        query = QhornQuery.build(
            self.n,
            universals=universals,
            existentials=[sorted(c) for c in conjunctions],
        )
        return ExpressionLearnerResult(
            query=query, questions_asked=self._asked
        )

    # ------------------------------------------------------------------
    def _learn_bodies(self, head: int, heads: list[int]) -> Steps:
        non_heads = [v for v in range(self.n) if v not in set(heads)]
        if (yield from self._requires_implication([], head)):
            return [frozenset()]
        bodies: list[FrozenSet[int]] = []
        asked: set[frozenset[int]] = set()
        pending: list[frozenset[int]] = [frozenset()]
        while pending:
            exclusion = pending.pop()
            if exclusion in asked:
                continue
            asked.add(exclusion)
            cover = [v for v in non_heads if v not in exclusion]
            if not (yield from self._requires_implication(cover, head)):
                continue
            body = yield from self._minimize_body(head, cover)
            bodies.append(body)
            pending = [
                frozenset(choice)
                for choice in product(*bodies)
                if frozenset(choice) not in asked
            ]
        return bodies

    def _minimize_body(self, head: int, cover: list[int]) -> Steps:
        kept = list(cover)
        for x in list(cover):
            trial = [v for v in kept if v != x]
            if (yield from self._requires_implication(trial, head)):
                kept = trial
        return frozenset(kept)

    # ------------------------------------------------------------------
    def _learn_conjunctions(self) -> Steps:
        """All maximal required conjunctions (the downward-closed family's
        border), via greedy growth from cross-product seed roots."""
        maximal: list[FrozenSet[int]] = []
        asked: set[frozenset[int]] = set()
        pending: list[frozenset[int]] = [frozenset()]
        while pending:
            seed = pending.pop()
            if seed in asked:
                continue
            asked.add(seed)
            if seed and not (yield from self._requires_conjunction(seed)):
                continue
            grown = yield from self._grow(seed)
            if any(grown <= m for m in maximal):
                continue
            maximal = [m for m in maximal if not m < grown]
            maximal.append(grown)
            # A yet-unknown maximal set must contain, for each known one,
            # some variable outside it: seed the next round accordingly.
            complements = [
                [v for v in range(self.n) if v not in m] for m in maximal
            ]
            if all(complements):
                pending = [
                    frozenset(choice)
                    for choice in product(*complements)
                    if frozenset(choice) not in asked
                ]
            else:
                pending = []
        return maximal

    def _grow(self, seed: FrozenSet[int]) -> Steps:
        current = set(seed)
        for v in range(self.n):
            if v in current:
                continue
            if (yield from self._requires_conjunction(current | {v})):
                current.add(v)
        return frozenset(current)
