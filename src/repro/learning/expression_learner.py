"""Learning role-preserving queries from expression questions (§6).

The companion learner to :class:`~repro.oracle.expression.ExpressionOracle`:
instead of showing the user example objects, it asks directly whether
candidate expressions must hold.  Both predicates are monotone —

* ``requires_implication(V, h)`` is monotone increasing in ``V`` (some body
  of ``h`` lies inside ``V``), matching Def. 3.1's dependence structure, so
  the same greedy minimization + cross-product root search recovers all
  dominant bodies;
* ``requires_conjunction(C)`` is monotone *decreasing* in ``C`` (the
  required conjunction family is downward closed), so dominant conjunctions
  are the family's maximal sets, found by greedy growth plus root-style
  restarts (the dual of the body search).

Each expression question yields one bit, exactly like a membership
question, so the asymptotics match §3.2; experiment E16 measures the
constant-factor savings (no all-true tuples, no matrix questions, no
pruning overhead).
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import product
from typing import FrozenSet

from repro.core.query import QhornQuery
from repro.oracle.expression import CountingExpressionOracle, ExpressionOracle

__all__ = ["ExpressionLearnerResult", "ExpressionLearner"]


@dataclass
class ExpressionLearnerResult:
    query: QhornQuery
    questions_asked: int


class ExpressionLearner:
    """Exact learner over expression questions for role-preserving qhorn."""

    def __init__(
        self, oracle: ExpressionOracle | CountingExpressionOracle
    ) -> None:
        self.oracle = (
            oracle
            if isinstance(oracle, CountingExpressionOracle)
            else CountingExpressionOracle(oracle)
        )
        self.n = oracle.n

    def learn(self) -> ExpressionLearnerResult:
        heads = [
            h
            for h in range(self.n)
            if self.oracle.requires_implication(
                [v for v in range(self.n) if v != h], h
            )
        ]
        universals: list[tuple[list[int], int]] = []
        for h in heads:
            for body in self._learn_bodies(h, heads):
                universals.append((sorted(body), h))
        conjunctions = self._learn_conjunctions()
        query = QhornQuery.build(
            self.n,
            universals=universals,
            existentials=[sorted(c) for c in conjunctions],
        )
        return ExpressionLearnerResult(
            query=query, questions_asked=self.oracle.questions_asked
        )

    # ------------------------------------------------------------------
    def _learn_bodies(
        self, head: int, heads: list[int]
    ) -> list[FrozenSet[int]]:
        non_heads = [v for v in range(self.n) if v not in set(heads)]
        if self.oracle.requires_implication([], head):
            return [frozenset()]
        bodies: list[FrozenSet[int]] = []
        asked: set[frozenset[int]] = set()
        pending: list[frozenset[int]] = [frozenset()]
        while pending:
            exclusion = pending.pop()
            if exclusion in asked:
                continue
            asked.add(exclusion)
            cover = [v for v in non_heads if v not in exclusion]
            if not self.oracle.requires_implication(cover, head):
                continue
            body = self._minimize_body(head, cover)
            bodies.append(body)
            pending = [
                frozenset(choice)
                for choice in product(*bodies)
                if frozenset(choice) not in asked
            ]
        return bodies

    def _minimize_body(self, head: int, cover: list[int]) -> FrozenSet[int]:
        kept = list(cover)
        for x in list(cover):
            trial = [v for v in kept if v != x]
            if self.oracle.requires_implication(trial, head):
                kept = trial
        return frozenset(kept)

    # ------------------------------------------------------------------
    def _learn_conjunctions(self) -> list[FrozenSet[int]]:
        """All maximal required conjunctions (the downward-closed family's
        border), via greedy growth from cross-product seed roots."""
        maximal: list[FrozenSet[int]] = []
        asked: set[frozenset[int]] = set()
        pending: list[frozenset[int]] = [frozenset()]
        while pending:
            seed = pending.pop()
            if seed in asked:
                continue
            asked.add(seed)
            if seed and not self.oracle.requires_conjunction(seed):
                continue
            grown = self._grow(seed)
            if any(grown <= m for m in maximal):
                continue
            maximal = [m for m in maximal if not m < grown]
            maximal.append(grown)
            # A yet-unknown maximal set must contain, for each known one,
            # some variable outside it: seed the next round accordingly.
            complements = [
                [v for v in range(self.n) if v not in m] for m in maximal
            ]
            if all(complements):
                pending = [
                    frozenset(choice)
                    for choice in product(*complements)
                    if frozenset(choice) not in asked
                ]
            else:
                pending = []
        return maximal

    def _grow(self, seed: FrozenSet[int]) -> FrozenSet[int]:
        current = set(seed)
        for v in range(self.n):
            if v in current:
                continue
            if self.oracle.requires_conjunction(current | {v}):
                current.add(v)
        return frozenset(current)
