"""Binary-search primitives over membership responses (Algs. 2, 3, 8).

The learning algorithms repeatedly reduce "which variables/tuples matter?"
to monotone set queries answered by the user:

* :func:`find_one` — Alg. 2 (*Find*): locate one positive item in a set, or
  report that there is none, with O(lg |V|) questions per item.
* :func:`find_all` — Alg. 3 (*FindAll*): locate every positive item with
  O(|found| · lg |V|) questions.
* :func:`find_all_batch` — batch-first FindAll: the same questions, asked
  level by level so each round is one oracle batch.
* :func:`minimal_prefix` — binary search for the shortest prefix satisfying
  a monotone predicate (the engine behind *GetHead*, Alg. 5).
* :func:`minimal_satisfying_subset` — Alg. 8 (*Prune*): extract a minimal
  subset that keeps a monotone predicate true, O(|kept| · lg |V|) questions.

Every primitive exists in two faces sharing ONE implementation:

* the ``*_steps`` form (the implementation) takes *step-generator*
  predicates — generators that yield :class:`~repro.protocol.core.Round`
  objects and return the predicate's truth — and is itself a step
  generator, so the sans-io learners compose it with ``yield from``;
* the plain-callable form (the historical API) lifts an ordinary
  predicate into a never-yielding step generator and runs the steps
  inline, asking exactly the same questions in the same order.

:func:`find_one`, :func:`minimal_prefix` and
:func:`minimal_satisfying_subset` are inherently *adaptive* — every
question depends on the previous answer — so their rounds are single
questions; only FindAll's recursion tree contains independent questions
to batch.  Each primitive documents its question complexity so the
learners' totals can be audited against the paper's theorems.
"""

from __future__ import annotations

from typing import Callable, Generator, Sequence, TypeVar

from repro.protocol.core import run_inline

T = TypeVar("T")

#: A step-generator predicate over one subset.
StepPredicate = Callable[[Sequence[T]], Generator]
#: A step-generator predicate answering many subsets in one round.
StepBatchPredicate = Callable[[Sequence[Sequence[T]]], Generator]

__all__ = [
    "find_one",
    "find_one_steps",
    "find_all",
    "find_all_steps",
    "find_all_batch",
    "find_all_batch_steps",
    "minimal_prefix",
    "minimal_prefix_steps",
    "minimal_satisfying_subset",
    "minimal_satisfying_subset_steps",
    "lift_predicate",
]


def lift_predicate(fn: Callable) -> Callable[..., Generator]:
    """Lift a plain callable into a step generator that never yields."""

    def step(*args):
        return fn(*args)
        yield  # pragma: no cover - makes `step` a generator function

    return step


# ----------------------------------------------------------------------
# Alg. 2 — Find
# ----------------------------------------------------------------------


def find_one_steps(
    contains: StepPredicate, items: Sequence[T]
) -> Generator:
    """Alg. 2 (*Find*): return one item of a non-empty positive subset.

    ``contains(S)`` must be a monotone step predicate meaning "``S``
    contains at least one target item".  Returns ``None`` when
    ``contains(items)`` is false.  Asks 1 question when empty-handed,
    otherwise O(lg |items|): the paper's version re-asks the second half
    after a failed first half; we use the implied answer instead (one
    fewer question per level).
    """
    items = list(items)
    if not items:
        return None
    if not (yield from contains(items)):
        return None
    while len(items) > 1:
        mid = len(items) // 2
        first, second = items[:mid], items[mid:]
        # By the invariant, a target is in first ∪ second; one question on
        # the first half decides which half to keep.
        items = first if (yield from contains(first)) else second
    return items[0]


def find_one(
    contains: Callable[[Sequence[T]], bool], items: Sequence[T]
) -> T | None:
    """Plain-callable face of :func:`find_one_steps`."""
    return run_inline(find_one_steps(lift_predicate(contains), items))


# ----------------------------------------------------------------------
# Alg. 3 — FindAll
# ----------------------------------------------------------------------


def find_all_steps(
    contains: StepPredicate, items: Sequence[T]
) -> Generator:
    """Alg. 3 (*FindAll*): return every target item in ``items``.

    Recursively splits; a subtree is abandoned after one question whenever
    it contains no target.  O(m lg |items|) questions for m found items.
    """
    items = list(items)
    if not items:
        return []
    if not (yield from contains(items)):
        return []
    if len(items) == 1:
        return items
    mid = len(items) // 2
    first = yield from find_all_steps(contains, items[:mid])
    second = yield from find_all_steps(contains, items[mid:])
    return first + second


def find_all(
    contains: Callable[[Sequence[T]], bool], items: Sequence[T]
) -> list[T]:
    """Plain-callable face of :func:`find_all_steps`."""
    return run_inline(find_all_steps(lift_predicate(contains), items))


def find_all_batch_steps(
    contains_each: StepBatchPredicate, items: Sequence[T]
) -> Generator:
    """Alg. 3 (*FindAll*), batch-first: one oracle round per tree level.

    ``contains_each(subsets)`` answers the containment question for every
    subset in one round.  A node's question depends only on its own
    ancestors' answers — sibling subtrees are independent — so walking the
    recursion tree level by level asks exactly the questions of the
    sequential :func:`find_all` (same multiset, O(lg |items|) rounds of at
    most 2·|found| questions each) and returns the same items in the same
    left-to-right order.
    """
    items = list(items)
    if not items:
        return []
    found_positions: list[int] = []
    frontier: list[list[int]] = [list(range(len(items)))]
    while frontier:
        answers = yield from contains_each(
            [[items[i] for i in subset] for subset in frontier]
        )
        next_frontier: list[list[int]] = []
        for subset, positive in zip(frontier, answers):
            if not positive:
                continue
            if len(subset) == 1:
                found_positions.append(subset[0])
                continue
            mid = len(subset) // 2
            next_frontier.append(subset[:mid])
            next_frontier.append(subset[mid:])
        frontier = next_frontier
    return [items[i] for i in sorted(found_positions)]


def find_all_batch(
    contains_each: Callable[[Sequence[Sequence[T]]], Sequence[bool]],
    items: Sequence[T],
) -> list[T]:
    """Plain-callable face of :func:`find_all_batch_steps`."""
    return run_inline(
        find_all_batch_steps(lift_predicate(contains_each), items)
    )


# ----------------------------------------------------------------------
# Minimal prefixes and subsets (Algs. 5 and 8's engines)
# ----------------------------------------------------------------------


def minimal_prefix_steps(
    pred: StepPredicate, items: Sequence[T]
) -> Generator:
    """Shortest prefix of ``items`` satisfying monotone step ``pred``.

    Returns ``None`` when even the full sequence fails.  O(lg |items|)
    predicate evaluations (the full-sequence check is reused as the first
    probe).
    """
    items = list(items)
    if not (yield from pred(items)):
        return None
    lo, hi = 1, len(items)
    while lo < hi:
        mid = (lo + hi) // 2
        if (yield from pred(items[:mid])):
            hi = mid
        else:
            lo = mid + 1
    return items[:lo]


def minimal_prefix(
    pred: Callable[[Sequence[T]], bool], items: Sequence[T]
) -> list[T] | None:
    """Plain-callable face of :func:`minimal_prefix_steps`."""
    return run_inline(minimal_prefix_steps(lift_predicate(pred), items))


def minimal_satisfying_subset_steps(
    pred: StepPredicate, items: Sequence[T]
) -> Generator:
    """Alg. 8 (*Prune*): a minimal subset of ``items`` keeping ``pred`` true.

    ``pred`` must be monotone with ``pred(items)`` true.  Classic minimal
    witness extraction: repeatedly binary-search the shortest prefix that,
    together with the already-kept elements, satisfies the predicate; the
    prefix's last element is necessary.  O(|kept| · lg |items|) predicate
    evaluations — the "O(lg n) questions for each tuple we need to keep" of
    §3.2.2.
    """
    kept: list[T] = []
    rest = list(items)
    while not (yield from pred(kept)):
        lo, hi = 1, len(rest)
        if hi == 0:
            raise ValueError("pred(items) must hold for minimization")
        while lo < hi:
            mid = (lo + hi) // 2
            if (yield from pred(kept + rest[:mid])):
                hi = mid
            else:
                lo = mid + 1
        kept.append(rest[lo - 1])
        rest = rest[: lo - 1]
    return kept


def minimal_satisfying_subset(
    pred: Callable[[Sequence[T]], bool], items: Sequence[T]
) -> list[T]:
    """Plain-callable face of :func:`minimal_satisfying_subset_steps`."""
    return run_inline(
        minimal_satisfying_subset_steps(lift_predicate(pred), items)
    )
