"""PAC learning of qhorn queries from random examples (§6 future work).

"We plan to investigate Probably Approximately Correct learning: we use
randomly-generated membership questions to learn a query with a certain
probability of error."

The classic consistency argument applies directly: draw ``m`` objects from
a distribution ``D``, label them with the hidden target, and return any
hypothesis consistent with the sample.  With

    m ≥ (1/ε) · (ln |H| + ln (1/δ))

the returned hypothesis errs on at most ε of ``D`` with probability 1 − δ.
For the enumerable classes (role-preserving qhorn at small n) we filter the
exhaustive hypothesis space; experiment E17 sweeps ``m`` and measures the
error curve.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import Callable, Sequence

from repro.core import tuples as bt
from repro.core.query import QhornQuery
from repro.core.tuples import Question
from repro.oracle.base import MembershipOracle, QueryOracle
from repro.protocol.core import Steps, ask_round
from repro.protocol.drivers import drive

__all__ = [
    "ObjectSampler",
    "random_object_sampler",
    "pac_sample_bound",
    "PacLearner",
    "pac_learn",
    "estimate_error",
    "PacResult",
]

ObjectSampler = Callable[[random.Random], Question]


def random_object_sampler(
    n: int, max_tuples: int | None = None
) -> ObjectSampler:
    """A simple example distribution: object size uniform in 1..max_tuples,
    tuples uniform over {0,1}^n (with the all-true tuple slightly boosted so
    positive examples are not vanishingly rare)."""
    max_tuples = max_tuples or max(2, n)
    top = bt.all_true(n)

    def sample(rng: random.Random) -> Question:
        size = rng.randint(1, max_tuples)
        tuples = [rng.randint(0, top) for _ in range(size)]
        if rng.random() < 0.3:
            tuples.append(top)
        return Question.of(n, tuples)

    return sample


def pac_sample_bound(
    hypothesis_count: int, epsilon: float, delta: float
) -> int:
    """The consistency-learner sample bound m ≥ (ln|H| + ln(1/δ)) / ε."""
    if not 0 < epsilon < 1 or not 0 < delta < 1:
        raise ValueError("epsilon and delta must be in (0, 1)")
    return math.ceil(
        (math.log(hypothesis_count) + math.log(1 / delta)) / epsilon
    )


@dataclass
class PacResult:
    """Outcome of a PAC run."""

    query: QhornQuery
    samples_used: int
    consistent_hypotheses: int


class PacLearner:
    """The PAC consistency learner behind a membership oracle.

    The one protocol round is the whole sample: ``m`` objects drawn
    upfront from the distribution, labeled by whoever answers the round
    (the hidden target in simulation, a user in a session).  Any
    hypothesis consistent with the labeled sample is returned — the first
    in enumeration order, as the classic learner may.
    """

    def __init__(
        self,
        oracle: MembershipOracle,
        hypotheses: Sequence[QhornQuery],
        sampler: ObjectSampler,
        m: int,
        rng: random.Random,
    ) -> None:
        self.oracle = oracle
        self.n = oracle.n
        self.hypotheses = list(hypotheses)
        self.sampler = sampler
        self.m = m
        self.rng = rng

    def learn(self) -> PacResult:
        """Pull-driven entry point: drive :meth:`steps` with the oracle."""
        return drive(self, self.oracle)

    def steps(self) -> Steps:
        """The learner as a sans-io step generator (DESIGN.md §2e)."""
        objects = [self.sampler(self.rng) for _ in range(self.m)]
        labels = yield from ask_round(objects)
        samples = list(zip(objects, labels))
        remaining = []
        for h in self.hypotheses:
            compiled = h.compile()
            if all(
                compiled.evaluate(obj.tuples) == label
                for obj, label in samples
            ):
                remaining.append(h)
        if not remaining:
            raise RuntimeError("hypothesis space exhausted; target not in it")
        return PacResult(
            query=remaining[0],
            samples_used=self.m,
            consistent_hypotheses=len(remaining),
        )


def pac_learn(
    target: QhornQuery,
    hypotheses: Sequence[QhornQuery],
    sampler: ObjectSampler,
    m: int,
    rng: random.Random,
) -> PacResult:
    """Label ``m`` sampled objects with ``target`` and return a consistent
    hypothesis (the first in enumeration order, as the classic learner may).

    Batch-first (DESIGN.md §2b): the whole sample is drawn upfront (same
    RNG stream as the sequential draw-filter loop, which never touches the
    RNG between draws) and labeled in one mask-native
    :meth:`~repro.oracle.base.QueryOracle.ask_many` round — one compile of
    the target, one evaluation per *distinct* sampled object.  Hypothesis
    filtering then runs per compiled hypothesis over the shared labels;
    consistency is order-independent, so the surviving set, the returned
    hypothesis and the exhaustion error match the sequential formulation
    exactly.

    Raises ``RuntimeError`` if no hypothesis is consistent — impossible when
    ``target`` (or an equivalent) is in the space.
    """
    return PacLearner(
        QueryOracle(target), hypotheses, sampler, m, rng
    ).learn()


def estimate_error(
    a: QhornQuery,
    b: QhornQuery,
    sampler: ObjectSampler,
    trials: int,
    rng: random.Random,
) -> float:
    """Monte-Carlo disagreement rate of two queries under the distribution.

    Both queries evaluate through their compiled forms over the batch of
    sampled objects (identical answers to the reference path, DESIGN.md §2).
    """
    if trials <= 0:
        raise ValueError("trials must be positive")
    objects = [sampler(rng) for _ in range(trials)]
    ca, cb = a.compile(), b.compile()
    disagree = sum(
        1 for obj in objects if ca.evaluate(obj.tuples) != cb.evaluate(obj.tuples)
    )
    return disagree / trials
