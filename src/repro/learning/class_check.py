"""Verifying the class assumption itself (§6 future work).

"In our learning/verification model, we made the following assumptions:
(i) the user's intended query is either in qhorn-1 or role-preserving
qhorn … We plan to design algorithms to verify that the user's query is
indeed in qhorn-1 or role-preserving qhorn."

The checker here runs the strongest test available from membership answers
alone: learn a candidate under the class assumption, then challenge it —
with the candidate's own O(k) verification set (complete *within* the
class, Thm 4.2) and with random objects (which can expose behaviour no
class member exhibits).  A user outside the class must contradict one of
the two; a user inside it never does, because learning is exact.

The report carries the evidence object for any contradiction, so a UI can
show the user exactly where their intent escapes the class.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.core import tuples as bt
from repro.core.query import QhornQuery
from repro.core.tuples import Question
from repro.learning.qhorn1 import Qhorn1Learner
from repro.learning.role_preserving import RolePreservingLearner
from repro.oracle.base import MembershipOracle
from repro.verification.verifier import Verifier

__all__ = ["ClassCheckReport", "check_class_membership"]


@dataclass
class ClassCheckReport:
    """Outcome of a class-membership check."""

    target_class: str
    consistent: bool
    candidate: QhornQuery
    evidence: Question | None = None
    detail: str = ""
    probes_used: int = 0

    def describe(self) -> str:
        verdict = (
            f"consistent with {self.target_class}"
            if self.consistent
            else f"NOT in {self.target_class}: {self.detail}"
        )
        return f"{verdict} (candidate: {self.candidate.shorthand()})"


def check_class_membership(
    oracle: MembershipOracle,
    target_class: str = "role-preserving",
    probes: int = 200,
    rng: random.Random | None = None,
) -> ClassCheckReport:
    """Test whether the user's intent is consistent with a qhorn subclass.

    ``target_class`` is ``"qhorn-1"`` or ``"role-preserving"``.  The check
    is sound (a consistent intent never fails) and empirically sharp: a
    contradiction certificate is returned whenever one is found within the
    verification set plus ``probes`` random objects.
    """
    if target_class not in ("qhorn-1", "role-preserving"):
        raise ValueError("target_class must be 'qhorn-1' or 'role-preserving'")
    rng = rng or random.Random(0)
    n = oracle.n

    learner = (
        Qhorn1Learner(oracle)
        if target_class == "qhorn-1"
        else RolePreservingLearner(oracle)
    )
    candidate = learner.learn().query

    # Structural sanity of the candidate itself.
    structurally_ok = (
        candidate.is_qhorn1()
        if target_class == "qhorn-1"
        else candidate.is_role_preserving()
    )
    if not structurally_ok:
        return ClassCheckReport(
            target_class=target_class,
            consistent=False,
            candidate=candidate,
            detail="learned candidate violates the class syntax",
        )

    # The candidate's verification set is complete within the class.
    outcome = Verifier(candidate).run(oracle)
    if not outcome.verified:
        d = outcome.disagreements[0]
        return ClassCheckReport(
            target_class=target_class,
            consistent=False,
            candidate=candidate,
            evidence=d.item.question,
            detail=f"user contradicts the candidate on {d.item.kind} "
            f"({d.item.provenance})",
            probes_used=outcome.questions_asked,
        )

    # Random probing catches behaviour no class member can produce.
    top = bt.all_true(n)
    used = outcome.questions_asked
    for _ in range(probes):
        size = rng.randint(1, max(2, n))
        tuples = [rng.randint(0, top) for _ in range(size)]
        if rng.random() < 0.3:
            tuples.append(top)
        question = Question.of(n, tuples)
        used += 1
        if oracle.ask(question) != candidate.evaluate(question):
            return ClassCheckReport(
                target_class=target_class,
                consistent=False,
                candidate=candidate,
                evidence=question,
                detail="user labels an object differently from every "
                "consistent class member",
                probes_used=used,
            )
    return ClassCheckReport(
        target_class=target_class,
        consistent=True,
        candidate=candidate,
        probes_used=used,
    )
