"""Process-parallel oracle dispatch: ``ask_all`` chunks across workers.

The batch-first protocol (DESIGN.md §2b) made a whole question list the
unit of interaction, and :func:`~repro.oracle.base.ask_all` already
splits huge batches into bounded chunks (``ASK_ALL_CHUNK_SIZE``).  Those
chunks are the natural dispatch unit for multi-core answering — exactly
the ROADMAP's async/multi-process oracle direction —  and
:class:`ParallelOracle` is the wrapper that fans them out over a
:class:`~repro.parallel.ShardWorkerPool`.

Sequential equivalence is preserved structurally, not probabilistically:

* the wrapped oracle must be **deterministic and effectively stateless**
  (answers depend only on the question) — :class:`QueryOracle`,
  :class:`FunctionOracle` over a pure function, or a factory building a
  fresh :class:`SqlQueryOracle` per worker all qualify.  Each worker
  holds an independent copy, so a stateful inner oracle would diverge;
  stateful *wrappers* (``CountingOracle``, ``CachingOracle``,
  ``NoisyOracle``, transcripts) belong **outside** the parallel layer,
  where they observe the reassembled answer stream;
* chunk answers are reassembled **in submission order**
  (:meth:`ShardWorkerPool.ask_chunks` keyes replies by chunk index), so
  ``ask_many(qs)`` returns exactly ``[ask(q) for q in qs]`` whatever
  worker answered what — CountingOracle statistics and seeded
  NoisyOracle flips on top stay bit-identical to the sequential path
  (pinned by ``tests/properties/test_prop_parallel.py``).

Batches of at most one chunk are answered in-process: dispatch cannot
help them, and the answers are identical by the determinism requirement.
"""

from __future__ import annotations

import itertools
from typing import Callable, Sequence

from repro.core.tuples import Question
from repro.oracle.base import ASK_ALL_CHUNK_SIZE, MembershipOracle

__all__ = ["ParallelOracle"]

#: Process-global oracle tokens: unique per ParallelOracle instance even
#: when several share one worker pool.
_TOKENS = itertools.count(1)


class ParallelOracle:
    """Answers ``ask_many`` batches through a pool of worker processes.

    Parameters
    ----------
    inner:
        The wrapped oracle — picklable, deterministic, effectively
        stateless (see the module docstring).  Exactly one of ``inner``
        and ``factory`` must be given.
    factory:
        Zero-argument picklable callable building the oracle; shipped to
        each worker, which constructs its own instance.  This is the
        path for oracles that are deterministic but not picklable —
        e.g. ``functools.partial(SqlQueryOracle, target)``, where every
        worker gets a private SQLite connection.
    pool:
        Caller-owned :class:`~repro.parallel.ShardWorkerPool` to
        dispatch through (shareable with a sharded backend); the oracle
        never closes it.  When omitted, the oracle creates and owns a
        pool of ``processes`` workers lazily on the first dispatched
        batch and closes it in :meth:`close` (also the context manager
        and an :mod:`atexit` guard inside the pool).
    processes:
        Worker count for the owned pool (``0`` = one per core).
    chunk_size:
        Questions per dispatched chunk; defaults to the ``ask_all``
        transport chunk (:data:`ASK_ALL_CHUNK_SIZE`).  Batch boundaries
        are unobservable (DESIGN.md §2b), so the value is purely a
        granularity/latency knob.
    """

    def __init__(
        self,
        inner: MembershipOracle | None = None,
        *,
        factory: Callable[[], MembershipOracle] | None = None,
        pool=None,
        processes: int = 0,
        chunk_size: int = ASK_ALL_CHUNK_SIZE,
    ) -> None:
        if (inner is None) == (factory is None):
            raise ValueError("exactly one of inner/factory must be given")
        if chunk_size < 1:
            raise ValueError(f"chunk_size must be positive, got {chunk_size}")
        from repro.parallel import PoolLease

        self._factory = factory
        self._local = inner if inner is not None else factory()
        self.inner = self._local
        self.n = self._local.n
        self.chunk_size = chunk_size
        self.processes = processes
        self._lease = PoolLease(pool=pool, processes=processes)
        self._token = next(_TOKENS)
        self._shipped_generation: int | None = None

    # ------------------------------------------------------------------
    # Dispatch plumbing
    # ------------------------------------------------------------------
    def _worker_pool(self):
        pool = self._lease.acquire()
        if self._shipped_generation != self._lease.generation:
            # Ship the oracle (or its factory) once per pool lifetime.
            if self._factory is not None:
                pool.set_oracle(self._token, self._factory, factory=True)
            else:
                pool.set_oracle(self._token, self._local)
            self._shipped_generation = self._lease.generation
        return pool

    # ------------------------------------------------------------------
    # The oracle protocol
    # ------------------------------------------------------------------
    def ask(self, question: Question) -> bool:
        """Single questions never cross the process boundary."""
        return self._local.ask(question)

    def ask_many(self, questions: Sequence[Question]) -> list[bool]:
        """Label a batch; multi-chunk batches fan out across workers.

        Positionally equivalent to a sequential :meth:`ask` loop by the
        determinism requirement plus submission-order reassembly.
        """
        from repro.parallel import WorkerCrashError

        questions = list(questions)
        size = self.chunk_size
        if len(questions) <= size:
            return self._local.ask_many(questions)
        chunks = [
            questions[start : start + size]
            for start in range(0, len(questions), size)
        ]
        try:
            replies = self._worker_pool().ask_chunks(self._token, chunks)
        except WorkerCrashError:
            self._lease.reset_after_crash()
            raise
        return [answer for chunk_answers in replies for answer in chunk_answers]

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def close(self) -> None:
        """Release pool resources; safe to call twice (a no-op then).

        An owned pool is closed outright; on a shared pool only this
        oracle's worker-side copies are dropped.
        """
        borrowed = self._lease.release()
        if borrowed is not None:
            borrowed.drop_oracle(self._token)

    def __enter__(self) -> "ParallelOracle":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        pool = (
            f"processes={self.processes}" if self._lease.owns else "shared"
        )
        return (
            f"ParallelOracle({self._local!r}, {pool}, "
            f"chunk_size={self.chunk_size})"
        )
