"""Imperfect users: noise injection and replayable corrections (§5).

The paper's discussion of active-learning criticisms (§5, "Noisy Users")
proposes keeping a history of all responses so a user can later fix a
mistake, which "triggers the query learning algorithm to restart query
learning from the point of error".  :class:`NoisyOracle` produces such
mistakes deterministically (seeded), and :class:`ReplayOracle` replays a
corrected transcript prefix before resuming live answering — exactly the
restart mechanism the paper sketches.
"""

from __future__ import annotations

import random
from typing import Sequence

from repro.core.tuples import Question
from repro.oracle.base import MembershipOracle, ask_all

__all__ = ["NoisyOracle", "ReplayOracle", "ExhaustedReplayError"]


class NoisyOracle:
    """Flips each true response with probability ``p_flip`` (seeded).

    Keeps both the noisy responses it gave and the true labels, so a session
    can locate the earliest corrupted response and correct it.
    """

    def __init__(
        self, inner: MembershipOracle, p_flip: float, rng: random.Random
    ) -> None:
        if not 0.0 <= p_flip <= 1.0:
            raise ValueError("p_flip must be a probability")
        self.inner = inner
        self.n = inner.n
        self.p_flip = p_flip
        self.rng = rng
        self.given: list[bool] = []
        self.truth: list[bool] = []

    def ask(self, question: Question) -> bool:
        true_response = self.inner.ask(question)
        return self._corrupt(true_response)

    def ask_many(self, questions: Sequence[Question]) -> list[bool]:
        """Batch the inner oracle, then flip per question in list order.

        One seeded ``rng.random()`` draw per question, in question order —
        exactly the draws a sequential :meth:`ask` loop consumes — so the
        flip pattern is identical whether a learner batches or not.  (The
        guarantee assumes the inner oracle does not consume the same
        ``rng`` instance, which no provided oracle does.)
        """
        true_responses = ask_all(self.inner, questions)
        return [self._corrupt(t) for t in true_responses]

    def _corrupt(self, true_response: bool) -> bool:
        response = (
            not true_response if self.rng.random() < self.p_flip else true_response
        )
        self.truth.append(true_response)
        self.given.append(response)
        return response

    def first_error(self) -> int | None:
        """Index of the earliest corrupted response, if any."""
        for i, (g, t) in enumerate(zip(self.given, self.truth)):
            if g != t:
                return i
        return None


class ExhaustedReplayError(RuntimeError):
    """A replay oracle ran past its recorded prefix without a live fallback."""


class ReplayOracle:
    """Replays a fixed response prefix, then defers to a live oracle.

    Used to restart a learner "from the point of error": the prefix is the
    corrected transcript up to and including the fixed response, and the
    live oracle supplies everything after it.
    """

    def __init__(
        self,
        prefix: list[bool],
        live: MembershipOracle | None,
        n: int | None = None,
    ) -> None:
        if live is None and n is None:
            raise ValueError("need either a live oracle or an explicit n")
        self.prefix = list(prefix)
        self.live = live
        self.n = live.n if live is not None else int(n)  # type: ignore[arg-type]
        self.position = 0

    def ask(self, question: Question) -> bool:
        if self.position < len(self.prefix):
            response = self.prefix[self.position]
            self.position += 1
            return response
        if self.live is None:
            raise ExhaustedReplayError(
                "replay prefix exhausted and no live oracle attached"
            )
        return self.live.ask(question)

    def ask_many(self, questions: Sequence[Question]) -> list[bool]:
        """Serve the batch from the prefix, then forward the remainder to
        the live oracle in one sub-batch.

        Replay order is positional, exactly as sequential :meth:`ask`
        calls: the first ``len(prefix) - position`` questions consume
        recorded responses, everything after goes live.  Running past the
        prefix without a live oracle raises :class:`ExhaustedReplayError`
        just as the sequential loop would at that question.
        """
        questions = list(questions)
        take = min(len(questions), len(self.prefix) - self.position)
        out: list[bool] = self.prefix[self.position : self.position + take]
        self.position += take
        rest = questions[take:]
        if rest:
            if self.live is None:
                raise ExhaustedReplayError(
                    "replay prefix exhausted and no live oracle attached"
                )
            out.extend(ask_all(self.live, rest))
        return out
