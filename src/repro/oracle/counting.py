"""Counting and recording wrappers around membership oracles.

The paper's complexity results are stated in *number of membership questions*
and *tuples per question* (§2.1.2: question generation must stay polynomial,
which entails polynomially many tuples per question).  The wrappers here
measure both, so every theorem becomes a measurable quantity.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.tuples import Question
from repro.oracle.base import MembershipOracle

__all__ = ["QuestionStats", "CountingOracle", "RecordingOracle"]


@dataclass
class QuestionStats:
    """Aggregate statistics over the questions asked through an oracle."""

    questions: int = 0
    tuples: int = 0
    max_tuples: int = 0
    answers: int = 0
    non_answers: int = 0
    tuples_histogram: dict[int, int] = field(default_factory=dict)

    def record(self, question: Question, response: bool) -> None:
        self.questions += 1
        size = question.size
        self.tuples += size
        self.max_tuples = max(self.max_tuples, size)
        self.tuples_histogram[size] = self.tuples_histogram.get(size, 0) + 1
        if response:
            self.answers += 1
        else:
            self.non_answers += 1

    @property
    def mean_tuples(self) -> float:
        return self.tuples / self.questions if self.questions else 0.0


class CountingOracle:
    """Wraps an oracle and tallies every question asked through it."""

    def __init__(self, inner: MembershipOracle) -> None:
        self.inner = inner
        self.n = inner.n
        self.stats = QuestionStats()

    def ask(self, question: Question) -> bool:
        response = self.inner.ask(question)
        self.stats.record(question, response)
        return response

    @property
    def questions_asked(self) -> int:
        return self.stats.questions

    def reset(self) -> None:
        self.stats = QuestionStats()


class RecordingOracle:
    """Wraps an oracle and keeps the full (question, response) transcript.

    The transcript powers the interactive layer's response-correction replay
    (§5 "Noisy Users"): a learner restarted against a
    :class:`RecordingOracle` transcript re-receives identical labels up to
    the corrected point.
    """

    def __init__(self, inner: MembershipOracle) -> None:
        self.inner = inner
        self.n = inner.n
        self.transcript: list[tuple[Question, bool]] = []

    def ask(self, question: Question) -> bool:
        response = self.inner.ask(question)
        self.transcript.append((question, response))
        return response

    def responses(self) -> list[bool]:
        return [r for _, r in self.transcript]
