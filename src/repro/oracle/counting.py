"""Counting and recording wrappers around membership oracles.

The paper's complexity results are stated in *number of membership questions*
and *tuples per question* (§2.1.2: question generation must stay polynomial,
which entails polynomially many tuples per question).  The wrappers here
measure both, so every theorem becomes a measurable quantity.

With the batch-first protocol (DESIGN.md §2b) a third quantity matters:
how many *rounds* of interaction the questions arrived in.  A batch of N
questions through :meth:`CountingOracle.ask_many` counts as N questions
(the paper's cost model is untouched) but only one round; the per-round
statistics quantify how much latency the batching saves.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from repro.core.tuples import Question
from repro.oracle.base import MembershipOracle, ask_all

__all__ = ["QuestionStats", "CountingOracle", "RecordingOracle"]


@dataclass
class QuestionStats:
    """Aggregate statistics over the questions asked through an oracle."""

    questions: int = 0
    tuples: int = 0
    max_tuples: int = 0
    answers: int = 0
    non_answers: int = 0
    tuples_histogram: dict[int, int] = field(default_factory=dict)
    #: Interaction rounds: one per ``ask`` call, one per ``ask_many`` batch.
    rounds: int = 0
    #: Questions that arrived inside an ``ask_many`` batch.
    batched_questions: int = 0
    #: Size of the largest single batch seen.
    largest_batch: int = 0

    def record(self, question: Question, response: bool) -> None:
        self.questions += 1
        size = question.size
        self.tuples += size
        self.max_tuples = max(self.max_tuples, size)
        self.tuples_histogram[size] = self.tuples_histogram.get(size, 0) + 1
        if response:
            self.answers += 1
        else:
            self.non_answers += 1

    def record_round(self, batch_size: int, batched: bool) -> None:
        """Tally one interaction round of ``batch_size`` questions."""
        self.rounds += 1
        if batched:
            self.batched_questions += batch_size
        self.largest_batch = max(self.largest_batch, batch_size)

    @property
    def mean_tuples(self) -> float:
        return self.tuples / self.questions if self.questions else 0.0

    @property
    def mean_batch(self) -> float:
        """Mean questions per interaction round."""
        return self.questions / self.rounds if self.rounds else 0.0


class CountingOracle:
    """Wraps an oracle and tallies every question asked through it."""

    def __init__(self, inner: MembershipOracle) -> None:
        self.inner = inner
        self.n = inner.n
        self.stats = QuestionStats()

    def ask(self, question: Question) -> bool:
        response = self.inner.ask(question)
        self.stats.record(question, response)
        self.stats.record_round(1, batched=False)
        return response

    def ask_many(self, questions: Sequence[Question]) -> list[bool]:
        """Forward the batch, then count each question individually.

        Question/tuple/answer statistics equal a sequential :meth:`ask`
        loop exactly; only the round bookkeeping differs (one round for
        the whole batch).
        """
        questions = list(questions)
        responses = ask_all(self.inner, questions)
        for question, response in zip(questions, responses):
            self.stats.record(question, response)
        if questions:
            self.stats.record_round(len(questions), batched=True)
        return responses

    @property
    def questions_asked(self) -> int:
        return self.stats.questions

    def reset(self) -> None:
        self.stats = QuestionStats()


class RecordingOracle:
    """Wraps an oracle and keeps the full (question, response) transcript.

    The transcript powers the interactive layer's response-correction replay
    (§5 "Noisy Users"): a learner restarted against a
    :class:`RecordingOracle` transcript re-receives identical labels up to
    the corrected point.
    """

    def __init__(self, inner: MembershipOracle) -> None:
        self.inner = inner
        self.n = inner.n
        self.transcript: list[tuple[Question, bool]] = []

    def ask(self, question: Question) -> bool:
        response = self.inner.ask(question)
        self.transcript.append((question, response))
        return response

    def ask_many(self, questions: Sequence[Question]) -> list[bool]:
        """Forward the batch and append each exchange in question order."""
        questions = list(questions)
        responses = ask_all(self.inner, questions)
        self.transcript.extend(zip(questions, responses))
        return responses

    def responses(self) -> list[bool]:
        return [r for _, r in self.transcript]
