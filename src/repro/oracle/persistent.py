"""Cross-session oracle cache persistence (ROADMAP item).

:class:`~repro.oracle.caching.CachingOracle` resets per process, so
repeated experiment sweeps and interactive restarts re-pay every distinct
question.  :class:`PersistentCachingOracle` backs the question→label map
with SQLite on disk: every answered miss is written through, and opening
the cache loads **all** stored answers up front (the *eviction-free
load* — the resident set is unbounded, like ``CachingOracle(maxsize=
None)``, so noise-freezing label consistency holds for the whole
session).

Statistics parity: on identical fresh state and identical question
sequences, hits/misses/evictions and the resident histogram match an
in-memory ``CachingOracle(maxsize=None)`` exactly — persistence changes
*when* answers are already resident (a reopened cache starts warm), never
how asking is accounted.  The parity is pinned by
``tests/test_persistent_oracle.py``.

Questions serialize as ``(n, "m1,m2,...")`` with masks sorted ascending —
a canonical form, since questions are sets of bitmask tuples.
"""

from __future__ import annotations

import sqlite3
from pathlib import Path
from typing import Sequence

from repro.core.tuples import Question
from repro.oracle.base import MembershipOracle, ask_all
from repro.oracle.caching import CacheStats

__all__ = ["PersistentCachingOracle"]

_MISSING = object()

_SCHEMA = """
CREATE TABLE IF NOT EXISTS answers (
    n INTEGER NOT NULL,
    tuples TEXT NOT NULL,
    response INTEGER NOT NULL,
    PRIMARY KEY (n, tuples)
)
"""


def _encode(question: Question) -> str:
    return ",".join(map(str, sorted(question.tuples)))


def _decode(n: int, text: str) -> Question:
    masks = (int(m) for m in text.split(",")) if text else ()
    return Question.of(n, masks)


class PersistentCachingOracle:
    """Wraps an oracle with a disk-persistent, eviction-free answer cache.

    Parameters
    ----------
    inner:
        The oracle answering cache misses.
    path:
        SQLite database file; created when absent, reused (and its
        answers loaded) when present.  Distinct widths may share a file —
        rows are keyed on ``(n, tuples)`` — but only rows matching the
        inner oracle's ``n`` are loaded.
    """

    def __init__(
        self, inner: MembershipOracle, path: str | Path
    ) -> None:
        self.inner = inner
        self.n = inner.n
        self.path = Path(path)
        self.connection = sqlite3.connect(str(self.path))
        self.connection.execute(_SCHEMA)
        self.connection.commit()
        self._cache: dict[Question, bool] = {}
        for text, response in self.connection.execute(
            "SELECT tuples, response FROM answers WHERE n = ?", (self.n,)
        ):
            self._cache[_decode(self.n, text)] = bool(response)
        resident: dict[int, int] = {}
        for q in self._cache:
            resident[q.size] = resident.get(q.size, 0) + 1
        self.stats = CacheStats(resident_histogram=resident)

    # ------------------------------------------------------------------
    # Asking
    # ------------------------------------------------------------------
    def _check(self, question: Question) -> None:
        # Width-validated before touching cache or disk: a wrong-width
        # question persisted under this oracle's n would decode as a
        # *different* question next session (disk-cache poisoning).
        if question.n != self.n:
            raise ValueError(
                f"question over n={question.n} variables, oracle has n={self.n}"
            )

    def ask(self, question: Question) -> bool:
        self._check(question)
        cached = self._cache.get(question, _MISSING)
        if cached is not _MISSING:
            self.stats.hits += 1
            return cached  # type: ignore[return-value]
        response = self.inner.ask(question)
        self._store(question, response)
        self.connection.commit()
        return response

    def ask_many(self, questions: Sequence[Question]) -> list[bool]:
        """Answer hits from the resident map and forward only the distinct
        misses, in one batch, to the inner oracle (then persist them).

        Without eviction the sequential dynamics are simple: the first
        occurrence of an uncached question is the one forwarded miss; all
        later occurrences are hits, exactly as a sequential loop.
        """
        questions = list(questions)
        for q in questions:
            self._check(q)
        missing: list[Question] = []
        seen: set[Question] = set()
        for q in questions:
            if q not in self._cache and q not in seen:
                missing.append(q)
                seen.add(q)
        responses = iter(ask_all(self.inner, missing))
        out: list[bool] = []
        for q in questions:
            cached = self._cache.get(q, _MISSING)
            if cached is not _MISSING:
                self.stats.hits += 1
                out.append(cached)  # type: ignore[arg-type]
            else:
                response = next(responses)
                self._store(q, response)
                out.append(response)
        if missing:
            self.connection.commit()
        return out

    def _store(self, question: Question, response: bool) -> None:
        """Record one answered miss: stats, resident map, write-through."""
        self.stats.misses += 1
        self._cache[question] = response
        hist = self.stats.resident_histogram
        hist[question.size] = hist.get(question.size, 0) + 1
        self.connection.execute(
            "INSERT OR REPLACE INTO answers VALUES (?, ?, ?)",
            (self.n, _encode(question), int(response)),
        )

    # ------------------------------------------------------------------
    # Maintenance
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        """Number of resident cached questions."""
        return len(self._cache)

    def __contains__(self, question: Question) -> bool:
        return question in self._cache

    def clear(self) -> None:
        """Drop all cached responses, in memory *and* on disk (statistics
        are kept, mirroring :meth:`CachingOracle.clear`)."""
        self._cache.clear()
        self.stats.resident_histogram.clear()
        self.connection.execute("DELETE FROM answers WHERE n = ?", (self.n,))
        self.connection.commit()

    def reset_stats(self) -> None:
        """Zero the statistics (cached responses are kept)."""
        resident: dict[int, int] = {}
        for q in self._cache:
            resident[q.size] = resident.get(q.size, 0) + 1
        self.stats = CacheStats(resident_histogram=resident)

    def close(self) -> None:
        self.connection.close()

    def __enter__(self) -> "PersistentCachingOracle":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"PersistentCachingOracle({self.inner!r}, path={str(self.path)!r}, "
            f"resident={len(self._cache)})"
        )
