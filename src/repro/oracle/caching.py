"""LRU-cached membership oracle with hit/miss statistics.

Learners, verifiers and revision loops frequently re-ask questions they
(or a previous phase) already asked — re-running a learner against the
same intent, verifying a freshly learned query, or replaying a session.
A :class:`CachingOracle` wraps any :class:`~repro.oracle.base
.MembershipOracle` with an LRU cache keyed on the (hashable)
:class:`~repro.core.tuples.Question`, so the inner oracle — a human, a
database scan, an expensive simulation — answers each distinct question
at most once while it stays resident.

Statistics separate the two quantities the paper's complexity results
care about: ``stats.questions`` counts what the algorithms *asked* (the
measurable cost to the user-model) and ``stats.misses`` counts what the
inner oracle actually *answered* (the evaluation cost the cache saved).

Wrapping a :class:`~repro.oracle.noisy.NoisyOracle` freezes its noise
for *resident* questions: a repeated question replays the cached
(possibly flipped) label instead of re-sampling — the self-consistent
user model.  The guarantee only holds while the question stays in the
cache; pass ``maxsize=None`` when a session may exceed the LRU bound
and label consistency matters.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Sequence

from repro.core.tuples import Question
from repro.oracle.base import MembershipOracle, ask_all

__all__ = ["CacheStats", "CachingOracle"]

_MISSING = object()


@dataclass
class CacheStats:
    """Hit/miss/eviction tallies of a :class:`CachingOracle`."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    #: Distinct questions currently resident, by tuple count.
    resident_histogram: dict[int, int] = field(default_factory=dict)

    @property
    def questions(self) -> int:
        """Questions asked through the cache (hits + misses)."""
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.questions if self.questions else 0.0


class CachingOracle:
    """Wraps an oracle with an LRU response cache.

    Parameters
    ----------
    inner:
        The oracle answering cache misses.
    maxsize:
        Maximum resident questions; ``None`` means unbounded.  The least
        recently *asked* question is evicted first.
    """

    def __init__(
        self, inner: MembershipOracle, maxsize: int | None = 4096
    ) -> None:
        if maxsize is not None and maxsize < 1:
            raise ValueError(f"maxsize must be positive or None, got {maxsize}")
        self.inner = inner
        self.n = inner.n
        self.maxsize = maxsize
        self._cache: OrderedDict[Question, bool] = OrderedDict()
        self.stats = CacheStats()

    def ask(self, question: Question) -> bool:
        cached = self._cache.get(question, _MISSING)
        if cached is not _MISSING:
            self._cache.move_to_end(question)
            self.stats.hits += 1
            return cached  # type: ignore[return-value]
        response = self.inner.ask(question)
        self._store(question, response)
        return response

    def ask_many(self, questions: Sequence[Question]) -> list[bool]:
        """Answer hits from the cache and forward only the misses, in one
        batch, to the inner oracle.

        Sequential equivalence is exact, including the awkward cases: a
        duplicate of an uncached question is a *hit* from its second
        occurrence on (the first occurrence populates the cache), unless an
        eviction inside the batch pushed it out again first — then it is
        re-forwarded, exactly as a sequential loop would re-ask.  The first
        pass below replays the LRU key dynamics (hit reorderings, inserts,
        evictions) without answers to derive the precise miss sequence the
        inner oracle must see; the second pass fills in responses and
        updates the real cache and statistics per question, in order.
        """
        questions = list(questions)
        simulated: OrderedDict[Question, None] = OrderedDict.fromkeys(
            self._cache
        )
        missing: list[Question] = []
        for q in questions:
            if q in simulated:
                simulated.move_to_end(q)
                continue
            missing.append(q)
            simulated[q] = None
            if self.maxsize is not None and len(simulated) > self.maxsize:
                simulated.popitem(last=False)
        responses = iter(ask_all(self.inner, missing))
        out: list[bool] = []
        for q in questions:
            cached = self._cache.get(q, _MISSING)
            if cached is not _MISSING:
                self._cache.move_to_end(q)
                self.stats.hits += 1
                out.append(cached)  # type: ignore[arg-type]
                continue
            response = next(responses)
            self._store(q, response)
            out.append(response)
        return out

    def _store(self, question: Question, response: bool) -> None:
        """Record one answered miss: stats, insertion, LRU eviction."""
        self.stats.misses += 1
        self._cache[question] = response
        hist = self.stats.resident_histogram
        hist[question.size] = hist.get(question.size, 0) + 1
        if self.maxsize is not None and len(self._cache) > self.maxsize:
            evicted, _ = self._cache.popitem(last=False)
            self.stats.evictions += 1
            hist[evicted.size] -= 1
            if not hist[evicted.size]:
                del hist[evicted.size]

    def __len__(self) -> int:
        """Number of resident cached questions."""
        return len(self._cache)

    def __contains__(self, question: Question) -> bool:
        return question in self._cache

    def clear(self) -> None:
        """Drop all cached responses (statistics are kept)."""
        self._cache.clear()
        self.stats.resident_histogram.clear()

    def reset_stats(self) -> None:
        """Zero the statistics (cached responses are kept)."""
        resident: dict[int, int] = {}
        for q in self._cache:
            resident[q.size] = resident.get(q.size, 0) + 1
        self.stats = CacheStats(resident_histogram=resident)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"CachingOracle({self.inner!r}, resident={len(self._cache)}, "
            f"hits={self.stats.hits}, misses={self.stats.misses})"
        )
