"""Asynchronous membership oracles: remote users on an event loop.

:class:`~repro.oracle.parallel.ParallelOracle` covers multi-core dispatch
of *simulated* oracles; the adapters here cover the other half of the
ROADMAP's scaling story — *remote* answering (human UIs, sockets, work
queues) without blocking a thread per session.  The contract mirrors the
synchronous one exactly: an async oracle answers ``ask``/``ask_many``
coroutines with the same sequential-equivalence guarantees, and
:func:`ask_all_async` reuses :func:`~repro.oracle.base.ask_all`'s
chunk-reassembly semantics (same ``ASK_ALL_CHUNK_SIZE`` boundaries, same
sequential-``ask`` fallback for ask-only oracles), so answers and wrapper
statistics are bit-identical to the synchronous path.
"""

from __future__ import annotations

import asyncio
from itertools import islice
from typing import Any, Iterable, Protocol, Sequence, runtime_checkable

from repro.core.tuples import Question
from repro.oracle.base import ASK_ALL_CHUNK_SIZE, ask_all

__all__ = [
    "AsyncMembershipOracle",
    "AsyncOracle",
    "QueueUserOracle",
    "ask_all_async",
]


@runtime_checkable
class AsyncMembershipOracle(Protocol):
    """Anything that can label membership questions asynchronously."""

    n: int

    async def ask(self, question: Question) -> bool:
        """Return ``True`` for *answer*, ``False`` for *non-answer*."""
        ...

    async def ask_many(self, questions: Sequence[Question]) -> list[bool]:
        """Label a batch; positionally equivalent to awaiting each
        question in order through :meth:`ask`."""
        ...


class AsyncOracle:
    """Adapts a synchronous oracle (or oracle stack) to the async protocol.

    Answers are computed inline on the event loop — simulated oracles are
    CPU-bound and fast, so there is nothing to await — which keeps every
    wrapper side effect (counting statistics, cache residency, seeded
    noise draws) in the exact order the synchronous path produces.
    ``ask_many`` forwards one chunk through :func:`ask_all` with chunking
    disabled: the async caller (:func:`ask_all_async`) already split at
    the canonical boundaries, and ask-only inner oracles degrade to the
    same sequential loop as the synchronous path.
    """

    def __init__(self, inner: Any) -> None:
        self.inner = inner
        self.n = inner.n

    async def ask(self, question: Question) -> bool:
        return bool(self.inner.ask(question))

    async def ask_many(self, questions: Sequence[Question]) -> list[bool]:
        return ask_all(self.inner, questions, chunk_size=None)


class QueueUserOracle:
    """A remote user behind a pair of asyncio queues.

    Each batch is posted to ``outbox`` as a list of questions; the matching
    answer list is awaited on ``inbox``.  The far side of the queues can be
    a websocket pump, an interactive UI, or the echo task of
    ``examples/remote_session.py`` — the oracle neither knows nor cares,
    which is the point of the sans-io split.

    A mismatched answer batch (wrong length, or not a sequence at all) is
    a *recoverable* protocol condition: the inbox item has already been
    consumed, so raising immediately would wedge the dialogue with no way
    for the far side to retry.  Instead the same question batch is
    re-posted to ``outbox`` (reject-and-reprompt) up to ``max_reasks``
    times; only when the far side keeps misbehaving does ``ask_many``
    raise a :class:`~repro.protocol.core.ProtocolError`.
    """

    def __init__(
        self,
        n: int,
        outbox: asyncio.Queue | None = None,
        inbox: asyncio.Queue | None = None,
        max_reasks: int = 3,
    ) -> None:
        self.n = n
        self.outbox: asyncio.Queue = outbox or asyncio.Queue()
        self.inbox: asyncio.Queue = inbox or asyncio.Queue()
        self.max_reasks = max_reasks
        #: Total mismatched batches that triggered a re-ask (metering).
        self.reasks = 0

    async def ask_many(self, questions: Sequence[Question]) -> list[bool]:
        from repro.protocol.core import ProtocolError

        questions = list(questions)
        attempts = 0
        while True:
            await self.outbox.put(questions)
            answers = await self.inbox.get()
            try:
                got = len(answers)
            except TypeError:
                got = -1  # not a sized batch at all
            if got == len(questions):
                return [bool(a) for a in answers]
            attempts += 1
            self.reasks += 1
            detail = (
                f"remote user answered {got} of {len(questions)} questions"
                if got >= 0
                else "remote user sent a non-sequence answer batch"
            )
            if attempts > self.max_reasks:
                raise ProtocolError(
                    f"{detail}; giving up after {self.max_reasks} re-asks"
                )

    async def ask(self, question: Question) -> bool:
        return (await self.ask_many([question]))[0]


async def ask_all_async(
    oracle: Any,
    questions: Iterable[Question],
    chunk_size: int | None = ASK_ALL_CHUNK_SIZE,
) -> list[bool]:
    """Async twin of :func:`~repro.oracle.base.ask_all`.

    Chunks are awaited sequentially — answers to one chunk may determine
    nothing about the next here, but sequential submission preserves the
    synchronous path's transport order, which the equivalence contract
    (and round-counting wrappers on the far side) depends on.
    """
    if chunk_size is not None and chunk_size < 1:
        raise ValueError(f"chunk_size must be positive or None, got {chunk_size}")
    ask_many = getattr(oracle, "ask_many", None)
    if ask_many is None:
        return [await oracle.ask(q) for q in questions]
    if chunk_size is None:
        questions = list(questions)
        return list(await ask_many(questions)) if questions else []
    responses: list[bool] = []
    iterator = iter(questions)
    while True:
        chunk = list(islice(iterator, chunk_size))
        if not chunk:
            return responses
        responses.extend(await ask_many(chunk))
