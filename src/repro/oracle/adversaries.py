"""Adversarial oracles: executable versions of the lower-bound proofs.

Theorem 2.1, Lemma 3.4 and Theorem 3.6 all argue the same way: exhibit a
query family such that any membership question eliminates almost no
candidates, then let an adversary answer so as to keep the candidate set
large.  :class:`CandidateEliminationAdversary` implements that adversary
generically — it maintains the set of still-consistent candidate queries and
always answers with the majority label, eliminating only the minority.

The benches replay the specific families (``Uni ∧ Alias`` for Thm 2.1, head
pairs for Lemma 3.4, overlapping bodies for Thm 3.6) against this adversary
and report how slowly the candidate set shrinks.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.core.query import QhornQuery
from repro.core.tuples import Question

__all__ = ["CandidateEliminationAdversary", "max_elimination"]


class CandidateEliminationAdversary:
    """Answers membership questions to keep as many candidates alive as
    possible.

    Ties favour *non-answer*, matching the paper's adversary ("Consider an
    adversary who always responds 'non-answer'").  The adversary is a valid
    membership oracle: its answers are always consistent with at least one
    remaining candidate, so a sound exact learner can never terminate before
    the candidate set is a singleton.
    """

    def __init__(self, candidates: Iterable[QhornQuery]) -> None:
        self.candidates: list[QhornQuery] = list(candidates)
        if not self.candidates:
            raise ValueError("adversary needs at least one candidate")
        ns = {q.n for q in self.candidates}
        if len(ns) != 1:
            raise ValueError("candidates must share a variable count")
        (self.n,) = ns
        self.questions_asked = 0

    @property
    def remaining(self) -> int:
        return len(self.candidates)

    def ask(self, question: Question) -> bool:
        self.questions_asked += 1
        yes = [q for q in self.candidates if q.evaluate(question)]
        no = [q for q in self.candidates if not q.evaluate(question)]
        if len(no) >= len(yes):
            self.candidates = no
            return False
        self.candidates = yes
        return True

    def ask_many(self, questions) -> list[bool]:
        """The adversary's answers are history-dependent by construction
        (each shrinks the candidate set), so the batch is processed
        strictly in order — batching never weakens the adversary."""
        return [self.ask(q) for q in questions]

    def is_identified(self) -> bool:
        return len(self.candidates) == 1


def max_elimination(
    candidates: Sequence[QhornQuery], questions: Iterable[Question]
) -> int:
    """The largest number of candidates any single question can eliminate
    when the adversary answers with the majority label.

    Exhausting ``questions`` over *all* objects for small ``n`` validates the
    counting step of the lower-bound proofs: e.g. for Theorem 2.1's family
    every question eliminates at most one candidate.
    """
    worst = 0
    for q in questions:
        yes = sum(1 for c in candidates if c.evaluate(q))
        worst = max(worst, min(yes, len(candidates) - yes))
    return worst
