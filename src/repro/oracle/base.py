"""Membership oracles: the paper's model of the user (§2.1.2).

A membership question is an example object; the user classifies it as an
*answer* or a *non-answer* for their intended query.  Everything that asks
questions in this library — learners, verifiers, interactive sessions —
talks to a :class:`MembershipOracle`, so simulated users, counting wrappers,
noise injection, adversaries and real humans compose freely.
"""

from __future__ import annotations

from typing import Protocol, runtime_checkable

from repro.core.query import QhornQuery
from repro.core.tuples import Question

__all__ = ["MembershipOracle", "QueryOracle", "FunctionOracle"]


@runtime_checkable
class MembershipOracle(Protocol):
    """Anything that can label membership questions."""

    n: int

    def ask(self, question: Question) -> bool:
        """Return ``True`` for *answer*, ``False`` for *non-answer*."""
        ...


class QueryOracle:
    """The ideal user: labels questions with a hidden target query.

    This is the ground-truth oracle used by exact-identification experiments;
    the learner never inspects :attr:`target`, only :meth:`ask`.
    """

    def __init__(self, target: QhornQuery) -> None:
        self.target = target
        self.n = target.n

    def ask(self, question: Question) -> bool:
        if question.n != self.n:
            raise ValueError(
                f"question over n={question.n} variables, oracle has n={self.n}"
            )
        return self.target.evaluate(question)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"QueryOracle({self.target.shorthand()})"


class FunctionOracle:
    """Adapts a plain callable ``Question -> bool`` to the oracle protocol."""

    def __init__(self, n: int, fn) -> None:
        self.n = n
        self._fn = fn

    def ask(self, question: Question) -> bool:
        return bool(self._fn(question))
