"""Membership oracles: the paper's model of the user (§2.1.2).

A membership question is an example object; the user classifies it as an
*answer* or a *non-answer* for their intended query.  Everything that asks
questions in this library — learners, verifiers, interactive sessions —
talks to a :class:`MembershipOracle`, so simulated users, counting wrappers,
noise injection, adversaries and real humans compose freely.

The protocol is *batch-first* (DESIGN.md §2b): next to the per-question
:meth:`~MembershipOracle.ask`, every oracle answers
:meth:`~MembershipOracle.ask_many`, which labels a whole question list in
one round.  The contract is strict sequential equivalence — on identical
oracle state, ``ask_many(qs)`` returns exactly ``[ask(q) for q in qs]``
with identical side effects (statistics, noise draws, replay positions) —
so batching is purely a latency/evaluation optimization, never a semantic
one.  Question-asking layers route batches through :func:`ask_all`, which
falls back to a sequential loop for ask-only user oracles.

The equivalence is promised for batches that complete.  When answering
*raises* (exhausted replay, width mismatch), a batch is atomic at each
wrapper: no per-question statistics or transcript entries are recorded
for the failed call, while the sequential loop records the prefix it
answered before the error (and inner state, e.g. a replay position, may
have advanced either way).  Error paths abort the interaction; they are
not part of the question-count cost model.
"""

from __future__ import annotations

from itertools import islice
from typing import Iterable, Protocol, Sequence, runtime_checkable

from repro.core.query import QhornQuery
from repro.core.tuples import Question

__all__ = [
    "ASK_ALL_CHUNK_SIZE",
    "MembershipOracle",
    "QueryOracle",
    "FunctionOracle",
    "ask_all",
]

#: Default upper bound on one ``ask_many`` call issued by :func:`ask_all`.
#: Batch boundaries are unobservable under the sequential-equivalence
#: contract (DESIGN.md §2b), so splitting a huge batch into consecutive
#: chunks changes nothing semantically — it only bounds how much one call
#: materializes at once, so multi-million-question fallback batches are
#: never handed to an oracle as a single list.  (``CountingOracle`` round
#: statistics count transport calls, so a > chunk-size batch tallies one
#: round per chunk — which is what actually happened.)
ASK_ALL_CHUNK_SIZE = 65536


@runtime_checkable
class MembershipOracle(Protocol):
    """Anything that can label membership questions."""

    n: int

    def ask(self, question: Question) -> bool:
        """Return ``True`` for *answer*, ``False`` for *non-answer*."""
        ...

    def ask_many(self, questions: Sequence[Question]) -> list[bool]:
        """Label a batch of questions; positionally equivalent to asking
        each question in order through :meth:`ask`."""
        ...


def ask_all(
    oracle: MembershipOracle,
    questions: Iterable[Question],
    chunk_size: int | None = ASK_ALL_CHUNK_SIZE,
) -> list[bool]:
    """Ask a batch through ``oracle``, whatever protocol it speaks.

    Uses the oracle's :meth:`~MembershipOracle.ask_many` when it has one
    and otherwise degrades to a sequential :meth:`~MembershipOracle.ask`
    loop, so ad-hoc user oracles that only implement ``ask`` (stateful
    simulations, humans, test doubles) keep their exact sequential
    semantics.  All batch-emitting layers go through this helper rather
    than calling ``ask_many`` directly.

    Very large batches are split into bounded chunks of ``chunk_size``
    questions issued as consecutive ``ask_many`` calls — semantically
    identical by the batch-boundary contract, but no single call ever
    materializes more than one chunk.  ``chunk_size=None`` disables
    chunking; the sequential fallback streams the iterable either way.
    """
    if chunk_size is not None and chunk_size < 1:
        raise ValueError(f"chunk_size must be positive or None, got {chunk_size}")
    ask_many = getattr(oracle, "ask_many", None)
    if ask_many is None:
        return [oracle.ask(q) for q in questions]
    if chunk_size is None:
        questions = list(questions)
        return list(ask_many(questions)) if questions else []
    responses: list[bool] = []
    iterator = iter(questions)
    while True:
        chunk = list(islice(iterator, chunk_size))
        if not chunk:
            return responses
        responses.extend(ask_many(chunk))


class QueryOracle:
    """The ideal user: labels questions with a hidden target query.

    This is the ground-truth oracle used by exact-identification experiments;
    the learner never inspects :attr:`target`, only :meth:`ask` /
    :meth:`ask_many`.
    """

    def __init__(self, target: QhornQuery) -> None:
        self.target = target
        self.n = target.n

    def _check(self, question: Question) -> None:
        if question.n != self.n:
            raise ValueError(
                f"question over n={question.n} variables, oracle has n={self.n}"
            )

    def ask(self, question: Question) -> bool:
        self._check(question)
        return self.target.evaluate(question)

    def ask_many(self, questions: Sequence[Question]) -> list[bool]:
        """Mask-native batch answering: one compile, one evaluation per
        *distinct* question.

        The target compiles once (memoized) and each distinct question's
        mask set is evaluated through the compiled form exactly once;
        duplicate questions reuse the answer.  ``CompiledQuery.evaluate``
        agrees with ``QhornQuery.evaluate`` by the batch-evaluation
        contract (DESIGN.md §2), so the responses are identical to a
        sequential :meth:`ask` loop.
        """
        compiled = self.target.compile()
        evaluate = compiled.evaluate
        answers: dict[Question, bool] = {}
        get = answers.get
        out: list[bool] = []
        for q in questions:
            cached = get(q)
            if cached is None:
                self._check(q)  # width-checked once per distinct question
                cached = answers[q] = evaluate(q.tuples)
            out.append(cached)
        return out

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"QueryOracle({self.target.shorthand()})"


class FunctionOracle:
    """Adapts a plain callable ``Question -> bool`` to the oracle protocol."""

    def __init__(self, n: int, fn) -> None:
        self.n = n
        self._fn = fn

    def ask(self, question: Question) -> bool:
        return bool(self._fn(question))

    def ask_many(self, questions: Sequence[Question]) -> list[bool]:
        """Sequential application: a plain callable has no batch form."""
        return [bool(self._fn(q)) for q in questions]
