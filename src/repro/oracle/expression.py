"""Expression questions: the richer question types of §6 (future work).

"We plan to examine the plausibility of constructing other types of
questions that provide more information bits but still maintain interface
usability.  One possibility is to ask questions to directly determine how
propositions interact such as: 'do you think p1 and p2 both have to be
satisfied by at least one tuple?' or 'when does p1 have to be satisfied?'"

An :class:`ExpressionOracle` answers exactly those questions about the
user's intended query:

* :meth:`requires_conjunction` — "must some tuple satisfy all of C?"
  (does the intent entail ``∃C``);
* :meth:`requires_implication` — "whenever a tuple satisfies B, must it
  also satisfy h?" (does the intent entail ``∀B→h``).

Both answers are still single bits, so expression questions cannot beat
membership questions information-theoretically — experiment E16 measures
how much the *constants* improve.
"""

from __future__ import annotations

from typing import Iterable

from repro.core.normalize import canonicalize
from repro.core.query import QhornQuery

__all__ = ["ExpressionOracle", "CountingExpressionOracle"]


class ExpressionOracle:
    """Answers entailment questions about a hidden role-preserving query."""

    def __init__(self, target: QhornQuery) -> None:
        if not target.is_role_preserving():
            raise ValueError(
                "expression oracles are defined for role-preserving targets"
            )
        self.n = target.n
        self._canon = canonicalize(target)

    def requires_conjunction(self, variables: Iterable[int]) -> bool:
        """"Do you think all of C have to be satisfied by one tuple?"

        Entailment check: the intent implies ``∃C`` iff some dominant
        conjunction of its canonical form contains C (otherwise the object
        holding exactly the dominant distinguishing tuples is an accepted
        counterexample).
        """
        wanted = frozenset(variables)
        if not wanted:
            return True
        return any(wanted <= c for c in self._canon.conjunctions)

    def requires_implication(self, body: Iterable[int], head: int) -> bool:
        """"Whenever a tuple satisfies B, must it satisfy h?"

        The intent implies ``∀B→h`` iff one of its dominant universal
        expressions on ``h`` has a body contained in B.
        """
        body_set = frozenset(body)
        if head in body_set:
            return True  # trivially entailed
        return any(
            u.head == head and u.body <= body_set
            for u in self._canon.universals
        )


class CountingExpressionOracle:
    """Counts expression questions, mirroring :class:`CountingOracle`."""

    def __init__(self, inner: ExpressionOracle) -> None:
        self.inner = inner
        self.n = inner.n
        self.questions_asked = 0

    def requires_conjunction(self, variables: Iterable[int]) -> bool:
        self.questions_asked += 1
        return self.inner.requires_conjunction(variables)

    def requires_implication(self, body: Iterable[int], head: int) -> bool:
        self.questions_asked += 1
        return self.inner.requires_implication(body, head)
