"""Expression questions: the richer question types of §6 (future work).

"We plan to examine the plausibility of constructing other types of
questions that provide more information bits but still maintain interface
usability.  One possibility is to ask questions to directly determine how
propositions interact such as: 'do you think p1 and p2 both have to be
satisfied by at least one tuple?' or 'when does p1 have to be satisfied?'"

An :class:`ExpressionOracle` answers exactly those questions about the
user's intended query:

* :meth:`requires_conjunction` — "must some tuple satisfy all of C?"
  (does the intent entail ``∃C``);
* :meth:`requires_implication` — "whenever a tuple satisfies B, must it
  also satisfy h?" (does the intent entail ``∀B→h``).

Both answers are still single bits, so expression questions cannot beat
membership questions information-theoretically — experiment E16 measures
how much the *constants* improve.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterable

from repro.core.normalize import canonicalize
from repro.core.query import QhornQuery

__all__ = [
    "ExpressionQuestion",
    "ExpressionOracle",
    "CountingExpressionOracle",
]


@dataclass(frozen=True)
class ExpressionQuestion:
    """One expression question as sans-io round payload (DESIGN.md §2e).

    The step protocol carries these through
    :class:`~repro.protocol.core.Round` exactly like membership
    :class:`~repro.core.tuples.Question` objects; drivers recognise the
    type and dispatch onto an expression oracle's methods.
    """

    kind: str  # "conjunction" | "implication"
    variables: tuple[int, ...]
    head: int | None = None

    def __post_init__(self) -> None:
        if self.kind not in ("conjunction", "implication"):
            raise ValueError(f"unknown expression question kind {self.kind!r}")
        if (self.head is None) != (self.kind == "conjunction"):
            raise ValueError("implication questions need a head, "
                             "conjunction questions must not have one")

    @classmethod
    def conjunction(cls, variables: Iterable[int]) -> "ExpressionQuestion":
        """"Do you think all of C have to be satisfied by one tuple?\""""
        return cls(kind="conjunction", variables=tuple(sorted(variables)))

    @classmethod
    def implication(
        cls, body: Iterable[int], head: int
    ) -> "ExpressionQuestion":
        """"Whenever a tuple satisfies B, must it satisfy h?\""""
        return cls(
            kind="implication", variables=tuple(sorted(body)), head=head
        )

    def answer_with(self, oracle: Any) -> bool:
        """Dispatch onto an (possibly counting) expression oracle."""
        if self.kind == "conjunction":
            return oracle.requires_conjunction(self.variables)
        return oracle.requires_implication(self.variables, self.head)


class ExpressionOracle:
    """Answers entailment questions about a hidden role-preserving query."""

    def __init__(self, target: QhornQuery) -> None:
        if not target.is_role_preserving():
            raise ValueError(
                "expression oracles are defined for role-preserving targets"
            )
        self.n = target.n
        self._canon = canonicalize(target)

    def requires_conjunction(self, variables: Iterable[int]) -> bool:
        """"Do you think all of C have to be satisfied by one tuple?"

        Entailment check: the intent implies ``∃C`` iff some dominant
        conjunction of its canonical form contains C (otherwise the object
        holding exactly the dominant distinguishing tuples is an accepted
        counterexample).
        """
        wanted = frozenset(variables)
        if not wanted:
            return True
        return any(wanted <= c for c in self._canon.conjunctions)

    def requires_implication(self, body: Iterable[int], head: int) -> bool:
        """"Whenever a tuple satisfies B, must it satisfy h?"

        The intent implies ``∀B→h`` iff one of its dominant universal
        expressions on ``h`` has a body contained in B.
        """
        body_set = frozenset(body)
        if head in body_set:
            return True  # trivially entailed
        return any(
            u.head == head and u.body <= body_set
            for u in self._canon.universals
        )


class CountingExpressionOracle:
    """Counts expression questions, mirroring :class:`CountingOracle`."""

    def __init__(self, inner: ExpressionOracle) -> None:
        self.inner = inner
        self.n = inner.n
        self.questions_asked = 0

    def requires_conjunction(self, variables: Iterable[int]) -> bool:
        self.questions_asked += 1
        return self.inner.requires_conjunction(variables)

    def requires_implication(self, body: Iterable[int], head: int) -> bool:
        self.questions_asked += 1
        return self.inner.requires_implication(body, head)
