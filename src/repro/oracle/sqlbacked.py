"""SQL-backed batch oracle: the database answers membership questions.

§5 of the paper observes that a rich database can *answer* membership
questions, not only exhibit examples.  :class:`SqlQueryOracle` is the
batch-first realization of that idea (the ROADMAP's SQL-backed batch
oracle): the hidden target compiles **once** to SQL
(:func:`repro.data.sql.to_sql` over a pure Boolean vocabulary), and each
:meth:`~SqlQueryOracle.ask_many` call loads the batch's *distinct*
questions as objects of a scratch SQLite database and answers them all
in **one round trip** — the ``SELECT`` returns exactly the keys of the
answer questions.

The oracle is a pure function of each question (no state across calls
beyond the reusable connection), so the sequential-equivalence contract
of DESIGN.md §2b holds trivially; agreement with the in-process
:class:`~repro.oracle.base.QueryOracle` on identical targets is part of
the backend differential suite.
"""

from __future__ import annotations

import sqlite3
from typing import Sequence

from repro.core.query import QhornQuery
from repro.core.tuples import Question
from repro.data.propositions import BoolIs, Vocabulary
from repro.data.schema import Attribute, FlatSchema
from repro.data.sql import to_sql

__all__ = ["SqlQueryOracle"]


def _boolean_vocabulary(n: int) -> Vocabulary:
    """``n`` independent BoolIs propositions over ``p1..pn``."""
    schema = FlatSchema(
        name="question_tuples",
        attributes=tuple(Attribute.boolean(f"p{i + 1}") for i in range(n)),
    )
    return Vocabulary(schema, [BoolIs(f"p{i + 1}") for i in range(n)])


class SqlQueryOracle:
    """Labels questions with a hidden target query evaluated by SQLite.

    Behaviourally identical to :class:`~repro.oracle.base.QueryOracle`
    (same answers, same width errors); the evaluation runs in the
    database instead of the process, which makes whole-batch answering a
    single SQL execution however large the batch.
    """

    def __init__(self, target: QhornQuery) -> None:
        self.target = target
        self.n = target.n
        self._sql = to_sql(target, _boolean_vocabulary(target.n))
        self.connection = sqlite3.connect(":memory:")
        cols = ", ".join(f"p{i + 1} INTEGER" for i in range(target.n))
        cur = self.connection.cursor()
        cur.execute("CREATE TABLE objects (object_key TEXT PRIMARY KEY)")
        cur.execute(f"CREATE TABLE rows (object_key TEXT, {cols})")
        cur.execute("CREATE INDEX rows_by_object ON rows (object_key)")
        self.connection.commit()

    def _check(self, question: Question) -> None:
        if question.n != self.n:
            raise ValueError(
                f"question over n={question.n} variables, oracle has n={self.n}"
            )

    def ask(self, question: Question) -> bool:
        return self.ask_many([question])[0]

    def ask_many(self, questions: Sequence[Question]) -> list[bool]:
        """One round trip: distinct questions become scratch objects, the
        precompiled target SQL selects the answer keys, duplicates reuse
        the batch answer."""
        questions = list(questions)
        if not questions:
            return []
        keys: dict[Question, str] = {}
        for q in questions:
            if q not in keys:
                self._check(q)  # width-checked once per distinct question
                keys[q] = f"q{len(keys)}"
        n = self.n
        cur = self.connection.cursor()
        cur.execute("DELETE FROM rows")
        cur.execute("DELETE FROM objects")
        cur.executemany(
            "INSERT INTO objects VALUES (?)", [(k,) for k in keys.values()]
        )
        cur.executemany(
            "INSERT INTO rows VALUES (?" + ", ?" * n + ")",
            [
                [key] + [t >> v & 1 for v in range(n)]
                for q, key in keys.items()
                for t in q.sorted_tuples()
            ],
        )
        answers = {row[0] for row in cur.execute(self._sql)}
        return [keys[q] in answers for q in questions]

    def close(self) -> None:
        self.connection.close()

    def __enter__(self) -> "SqlQueryOracle":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"SqlQueryOracle({self.target.shorthand()})"
