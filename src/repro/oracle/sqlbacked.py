"""SQL-backed batch oracle: the database answers membership questions.

§5 of the paper observes that a rich database can *answer* membership
questions, not only exhibit examples.  :class:`SqlQueryOracle` is the
batch-first realization of that idea (the ROADMAP's SQL-backed batch
oracle): the hidden target compiles **once** to SQL
(:func:`repro.data.sql.to_sql` over a pure Boolean vocabulary), and each
:meth:`~SqlQueryOracle.ask_many` call loads the batch's *distinct*
questions as objects of a scratch SQLite database and answers them all
in **one round trip** — the ``SELECT`` returns exactly the keys of the
answer questions.

The oracle is a pure function of each question (no state across calls
beyond the reusable connection), so the sequential-equivalence contract
of DESIGN.md §2b holds trivially; agreement with the in-process
:class:`~repro.oracle.base.QueryOracle` on identical targets is part of
the backend differential suite.

Connection modes
----------------
* **Private** (default): the oracle owns one connection to a private
  in-memory SQLite (or ``uri=``/``connect=`` for a file or third-party
  driver), exactly the PR 3 behaviour.
* **Pooled** (``pool=`` or :meth:`SqlQueryOracle.for_backend`): every
  statement runs through a
  :class:`~repro.data.backends.dbapi.PooledConnectionSource` checkout —
  the pool a :class:`~repro.data.backends.dbapi.DbApiBackend` already
  holds open, so oracle batches and backend evaluations share the same
  bounded, health-checked connection set instead of the oracle opening a
  private handle on the side.  Scratch tables are prefixed
  (``question_objects``/``question_rows``) so they coexist with a loaded
  relation's ``objects``/``rows`` in the same database, and a statement
  that dies on a stale connection is replayed once on a fresh checkout
  (counted in the pool's ``stale_retries``).
"""

from __future__ import annotations

import sqlite3
from typing import Any, Callable, Sequence

from repro.core.query import QhornQuery
from repro.core.tuples import Question
from repro.data.propositions import BoolIs, Vocabulary
from repro.data.schema import Attribute, FlatSchema
from repro.data.sql import SqlDialect, get_dialect, to_sql

__all__ = ["SqlQueryOracle"]


def _boolean_vocabulary(n: int) -> Vocabulary:
    """``n`` independent BoolIs propositions over ``p1..pn``."""
    schema = FlatSchema(
        name="question_tuples",
        attributes=tuple(Attribute.boolean(f"p{i + 1}") for i in range(n)),
    )
    return Vocabulary(schema, [BoolIs(f"p{i + 1}") for i in range(n)])


class SqlQueryOracle:
    """Labels questions with a hidden target query evaluated by SQL.

    Behaviourally identical to :class:`~repro.oracle.base.QueryOracle`
    (same answers, same width errors); the evaluation runs in the
    database instead of the process, which makes whole-batch answering a
    single SQL execution however large the batch.

    By default the scratch database is a private in-memory SQLite; the
    v2 backend API (DESIGN.md §2i) adds ``uri=`` (a file-backed SQLite
    URI — ``repro learn --backend dbapi --backend-opt uri=file:...``),
    ``connect=`` (any zero-argument DB-API connection factory) and
    ``dialect=`` so the same one-round-trip ``ask_many`` runs on an
    external database.  ``pool=`` switches to pooled checkouts (see the
    module docstring); :meth:`for_backend` wires the oracle onto a
    :class:`~repro.data.backends.dbapi.DbApiBackend`'s existing pool,
    and :meth:`pooled` builds an oracle that owns its own pool.  The
    scratch tables are dropped and recreated at construction, so reusing
    a file (or a backend's database) between runs is safe.
    """

    def __init__(
        self,
        target: QhornQuery,
        uri: str | None = None,
        connect: Callable[[], Any] | None = None,
        dialect: SqlDialect | str | None = "sqlite",
        pool: Any | None = None,
        table_prefix: str | None = None,
        retry_on: tuple[type[BaseException], ...] | None = None,
    ) -> None:
        self.target = target
        self.n = target.n
        self.uri = uri
        self.dialect = get_dialect(dialect)
        self.pool = pool
        #: (pool, keeper) pairs this oracle must close — only set by
        #: :meth:`pooled`; a pool shared via ``pool=``/:meth:`for_backend`
        #: stays the caller's to close.
        self._owned: list[Any] = []
        d = self.dialect
        if pool is not None:
            if uri is not None or connect is not None:
                raise ValueError(
                    "pool= replaces uri=/connect=: pooled oracles check "
                    "connections out of the shared pool"
                )
            self.connection = None
            self._retry_on = retry_on if retry_on is not None else (Exception,)
        elif connect is not None:
            self.connection = connect()
            self._retry_on = ()
        elif uri is not None:
            self.connection = sqlite3.connect(
                uri, uri=uri.startswith("file:"), check_same_thread=False
            )
            self._retry_on = ()
        else:
            self.connection = sqlite3.connect(":memory:")
            self._retry_on = ()
        if table_prefix is None:
            # Pooled oracles share a database that may hold a loaded
            # relation; namespace the scratch tables out of its way.
            table_prefix = "question_" if pool is not None else ""
        self.table_prefix = table_prefix
        self._objects_name = f"{table_prefix}objects"
        self._rows_name = f"{table_prefix}rows"
        self._sql = to_sql(
            target,
            _boolean_vocabulary(target.n),
            dialect=d,
            objects_table=self._objects_name,
            rows_table=self._rows_name,
        )
        names = [f"p{i + 1}" for i in range(target.n)]
        objects_table = d.identifier(self._objects_name)
        rows_table = d.identifier(self._rows_name)
        self._objects_table = objects_table
        self._rows_table = rows_table
        self._insert_object = (
            f"INSERT INTO {objects_table} VALUES "
            f"({d.placeholders(['object_key'])})"
        )
        self._insert_row = (
            f"INSERT INTO {rows_table} VALUES "
            f"({d.placeholders(['object_key'] + names)})"
        )
        boolean_type = d.type_names.get("BOOLEAN", "INTEGER")
        cols = ", ".join(
            f"{d.identifier(name)} {boolean_type}" for name in names
        )
        index_name = d.identifier(f"{self._rows_name}_by_object")
        ddl = (
            f"DROP TABLE IF EXISTS {rows_table}",
            f"DROP TABLE IF EXISTS {objects_table}",
            f"CREATE TABLE {objects_table} (object_key TEXT PRIMARY KEY)",
            f"CREATE TABLE {rows_table} (object_key TEXT, {cols})",
            f"CREATE INDEX {index_name} ON {rows_table} (object_key)",
        )

        def setup(connection: Any) -> None:
            cur = connection.cursor()
            for statement in ddl:
                cur.execute(statement)
            connection.commit()

        self._run(setup)

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def for_backend(cls, target: QhornQuery, backend: Any) -> "SqlQueryOracle":
        """An oracle batching through ``backend``'s existing connection
        pool (a :class:`~repro.data.backends.dbapi.DbApiBackend`):
        membership answering and relation evaluation share one bounded
        connection set, one dialect, one database."""
        return cls(
            target,
            pool=backend.pool,
            dialect=backend.dialect,
            retry_on=getattr(backend, "_retry_on", None),
        )

    @classmethod
    def pooled(
        cls,
        target: QhornQuery,
        uri: str | None = None,
        dialect: SqlDialect | str | None = "sqlite",
        pool_size: int = 4,
    ) -> "SqlQueryOracle":
        """A standalone pooled oracle that owns its pool (and closes it).

        This is the ``--backend dbapi`` oracle path: SQLite over ``uri``
        (or a private shared-memory database) behind a health-checked
        :class:`~repro.data.backends.dbapi.PooledConnectionSource`.
        """
        from repro.data.backends.dbapi import (
            PooledConnectionSource,
            memory_uri,
            sqlite_connector,
        )

        actual_uri = uri if uri is not None else memory_uri("oracle")
        connect = sqlite_connector(actual_uri)
        # Shared-memory databases live while one connection stays open.
        keeper = connect()
        pool = PooledConnectionSource(connect, maxsize=pool_size)
        oracle = cls(
            target, pool=pool, dialect=dialect, retry_on=(sqlite3.Error,)
        )
        oracle.uri = actual_uri
        oracle._owned = [pool, keeper]
        return oracle

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def _run(self, work: Callable[[Any], Any]) -> Any:
        """Run ``work(connection)`` — directly in private mode, through a
        pool checkout in pooled mode, replayed once on a fresh checkout
        if a retryable driver error kills the first attempt (the batch
        setup deletes before inserting, so a replay is idempotent)."""
        if self.pool is None:
            return work(self.connection)
        connection = self.pool.acquire()
        try:
            try:
                return work(connection)
            except self._retry_on:
                self.pool.discard(connection)
                self.pool.count_stale_retry()
                connection = None
                connection = self.pool.acquire()
                return work(connection)
        finally:
            if connection is not None:
                self.pool.release(connection)

    def _check(self, question: Question) -> None:
        if question.n != self.n:
            raise ValueError(
                f"question over n={question.n} variables, oracle has n={self.n}"
            )

    def ask(self, question: Question) -> bool:
        return self.ask_many([question])[0]

    def ask_many(self, questions: Sequence[Question]) -> list[bool]:
        """One round trip: distinct questions become scratch objects, the
        precompiled target SQL selects the answer keys, duplicates reuse
        the batch answer."""
        questions = list(questions)
        if not questions:
            return []
        keys: dict[Question, str] = {}
        for q in questions:
            if q not in keys:
                self._check(q)  # width-checked once per distinct question
                keys[q] = f"q{len(keys)}"
        n = self.n

        def answer(connection: Any) -> set:
            cur = connection.cursor()
            cur.execute(f"DELETE FROM {self._rows_table}")
            cur.execute(f"DELETE FROM {self._objects_table}")
            cur.executemany(
                self._insert_object, [(k,) for k in keys.values()]
            )
            cur.executemany(
                self._insert_row,
                [
                    [key] + [t >> v & 1 for v in range(n)]
                    for q, key in keys.items()
                    for t in q.sorted_tuples()
                ],
            )
            found = {row[0] for row in cur.execute(self._sql)}
            if self.pool is not None:
                # Pooled connections interleave with other checkouts;
                # never park an open write transaction in the pool.
                connection.commit()
            return found

        answers = self._run(answer)
        return [keys[q] in answers for q in questions]

    def close(self) -> None:
        """Close what this oracle owns: its private connection, or (for
        :meth:`pooled` oracles) its own pool and keeper.  A pool shared
        through ``pool=``/:meth:`for_backend` is left open — the backend
        that owns it decides its lifetime."""
        if self.connection is not None:
            self.connection.close()
        for resource in self._owned:
            try:
                resource.close()
            except Exception:
                pass
        self._owned = []

    def __enter__(self) -> "SqlQueryOracle":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"SqlQueryOracle({self.target.shorthand()})"
