"""SQL-backed batch oracle: the database answers membership questions.

§5 of the paper observes that a rich database can *answer* membership
questions, not only exhibit examples.  :class:`SqlQueryOracle` is the
batch-first realization of that idea (the ROADMAP's SQL-backed batch
oracle): the hidden target compiles **once** to SQL
(:func:`repro.data.sql.to_sql` over a pure Boolean vocabulary), and each
:meth:`~SqlQueryOracle.ask_many` call loads the batch's *distinct*
questions as objects of a scratch SQLite database and answers them all
in **one round trip** — the ``SELECT`` returns exactly the keys of the
answer questions.

The oracle is a pure function of each question (no state across calls
beyond the reusable connection), so the sequential-equivalence contract
of DESIGN.md §2b holds trivially; agreement with the in-process
:class:`~repro.oracle.base.QueryOracle` on identical targets is part of
the backend differential suite.
"""

from __future__ import annotations

import sqlite3
from typing import Any, Callable, Sequence

from repro.core.query import QhornQuery
from repro.core.tuples import Question
from repro.data.propositions import BoolIs, Vocabulary
from repro.data.schema import Attribute, FlatSchema
from repro.data.sql import SqlDialect, get_dialect, to_sql

__all__ = ["SqlQueryOracle"]


def _boolean_vocabulary(n: int) -> Vocabulary:
    """``n`` independent BoolIs propositions over ``p1..pn``."""
    schema = FlatSchema(
        name="question_tuples",
        attributes=tuple(Attribute.boolean(f"p{i + 1}") for i in range(n)),
    )
    return Vocabulary(schema, [BoolIs(f"p{i + 1}") for i in range(n)])


class SqlQueryOracle:
    """Labels questions with a hidden target query evaluated by SQLite.

    Behaviourally identical to :class:`~repro.oracle.base.QueryOracle`
    (same answers, same width errors); the evaluation runs in the
    database instead of the process, which makes whole-batch answering a
    single SQL execution however large the batch.

    By default the scratch database is a private in-memory SQLite; the
    v2 backend API (DESIGN.md §2i) adds ``uri=`` (a file-backed SQLite
    URI — ``repro learn --backend dbapi --backend-opt uri=file:...``),
    ``connect=`` (any zero-argument DB-API connection factory) and
    ``dialect=`` so the same one-round-trip ``ask_many`` runs on an
    external database.  The scratch tables are dropped and recreated at
    construction, so reusing a file between runs is safe.
    """

    def __init__(
        self,
        target: QhornQuery,
        uri: str | None = None,
        connect: Callable[[], Any] | None = None,
        dialect: SqlDialect | str | None = "sqlite",
    ) -> None:
        self.target = target
        self.n = target.n
        self.uri = uri
        self.dialect = get_dialect(dialect)
        d = self.dialect
        self._sql = to_sql(target, _boolean_vocabulary(target.n), dialect=d)
        if connect is not None:
            self.connection = connect()
        elif uri is not None:
            self.connection = sqlite3.connect(
                uri, uri=uri.startswith("file:"), check_same_thread=False
            )
        else:
            self.connection = sqlite3.connect(":memory:")
        names = [f"p{i + 1}" for i in range(target.n)]
        objects_table = d.identifier("objects")
        rows_table = d.identifier("rows")
        boolean_type = d.type_names.get("BOOLEAN", "INTEGER")
        cols = ", ".join(
            f"{d.identifier(name)} {boolean_type}" for name in names
        )
        cur = self.connection.cursor()
        cur.execute(f"DROP TABLE IF EXISTS {rows_table}")
        cur.execute(f"DROP TABLE IF EXISTS {objects_table}")
        cur.execute(
            f"CREATE TABLE {objects_table} (object_key TEXT PRIMARY KEY)"
        )
        cur.execute(f"CREATE TABLE {rows_table} (object_key TEXT, {cols})")
        cur.execute(
            f"CREATE INDEX rows_by_object ON {rows_table} (object_key)"
        )
        self.connection.commit()
        self._objects_table = objects_table
        self._rows_table = rows_table
        self._insert_object = (
            f"INSERT INTO {objects_table} VALUES "
            f"({d.placeholders(['object_key'])})"
        )
        self._insert_row = (
            f"INSERT INTO {rows_table} VALUES "
            f"({d.placeholders(['object_key'] + names)})"
        )

    def _check(self, question: Question) -> None:
        if question.n != self.n:
            raise ValueError(
                f"question over n={question.n} variables, oracle has n={self.n}"
            )

    def ask(self, question: Question) -> bool:
        return self.ask_many([question])[0]

    def ask_many(self, questions: Sequence[Question]) -> list[bool]:
        """One round trip: distinct questions become scratch objects, the
        precompiled target SQL selects the answer keys, duplicates reuse
        the batch answer."""
        questions = list(questions)
        if not questions:
            return []
        keys: dict[Question, str] = {}
        for q in questions:
            if q not in keys:
                self._check(q)  # width-checked once per distinct question
                keys[q] = f"q{len(keys)}"
        n = self.n
        cur = self.connection.cursor()
        cur.execute(f"DELETE FROM {self._rows_table}")
        cur.execute(f"DELETE FROM {self._objects_table}")
        cur.executemany(
            self._insert_object, [(k,) for k in keys.values()]
        )
        cur.executemany(
            self._insert_row,
            [
                [key] + [t >> v & 1 for v in range(n)]
                for q, key in keys.items()
                for t in q.sorted_tuples()
            ],
        )
        answers = {row[0] for row in cur.execute(self._sql)}
        return [keys[q] in answers for q in questions]

    def close(self) -> None:
        self.connection.close()

    def __enter__(self) -> "SqlQueryOracle":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"SqlQueryOracle({self.target.shorthand()})"
