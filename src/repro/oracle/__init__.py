"""Membership oracles: simulated users, wrappers, adversaries (§2.1.2)."""

from repro.oracle.adversaries import CandidateEliminationAdversary, max_elimination
from repro.oracle.aio import (
    AsyncMembershipOracle,
    AsyncOracle,
    QueueUserOracle,
    ask_all_async,
)
from repro.oracle.base import (
    ASK_ALL_CHUNK_SIZE,
    FunctionOracle,
    MembershipOracle,
    QueryOracle,
    ask_all,
)
from repro.oracle.caching import CacheStats, CachingOracle
from repro.oracle.counting import CountingOracle, QuestionStats, RecordingOracle
from repro.oracle.expression import (
    CountingExpressionOracle,
    ExpressionOracle,
    ExpressionQuestion,
)
from repro.oracle.human import HumanOracle
from repro.oracle.noisy import ExhaustedReplayError, NoisyOracle, ReplayOracle
from repro.oracle.parallel import ParallelOracle
from repro.oracle.persistent import PersistentCachingOracle
from repro.oracle.sqlbacked import SqlQueryOracle

__all__ = [
    "ASK_ALL_CHUNK_SIZE",
    "AsyncMembershipOracle",
    "AsyncOracle",
    "QueueUserOracle",
    "ask_all_async",
    "ExpressionQuestion",
    "CacheStats",
    "CachingOracle",
    "PersistentCachingOracle",
    "SqlQueryOracle",
    "CandidateEliminationAdversary",
    "CountingExpressionOracle",
    "CountingOracle",
    "ExpressionOracle",
    "ExhaustedReplayError",
    "FunctionOracle",
    "HumanOracle",
    "MembershipOracle",
    "NoisyOracle",
    "ParallelOracle",
    "QueryOracle",
    "QuestionStats",
    "RecordingOracle",
    "ReplayOracle",
    "ask_all",
    "max_elimination",
]
