"""A human-in-the-loop oracle for the interactive CLI example.

Renders each membership question (optionally through a data-domain
vocabulary so the user sees real rows instead of bit strings) and reads an
answer / non-answer label from a callable — by default, stdin.
"""

from __future__ import annotations

from typing import Callable, Sequence

from repro.core.tuples import Question

__all__ = ["HumanOracle"]

_TRUE = {"y", "yes", "a", "answer", "1", "true"}
_FALSE = {"n", "no", "non-answer", "nonanswer", "0", "false"}


class HumanOracle:
    """Asks a person to label each question.

    Parameters
    ----------
    n:
        Number of Boolean variables.
    render:
        Maps a :class:`Question` to the text shown to the user.  Defaults to
        the paper's bit-string rendering.
    input_fn / output_fn:
        Injectable I/O for testing; default to ``input``/``print``.
    """

    def __init__(
        self,
        n: int,
        render: Callable[[Question], str] | None = None,
        input_fn: Callable[[str], str] = input,
        output_fn: Callable[[str], None] = print,
    ) -> None:
        self.n = n
        self.render = render or (lambda q: q.format())
        self.input_fn = input_fn
        self.output_fn = output_fn
        self.asked = 0

    def ask(self, question: Question) -> bool:
        self.asked += 1
        self.output_fn(f"\n--- membership question #{self.asked} ---")
        self.output_fn(self.render(question))
        while True:
            raw = self.input_fn(
                "Is this object an answer to your query? [y/n] "
            ).strip().lower()
            if raw in _TRUE:
                return True
            if raw in _FALSE:
                return False
            self.output_fn("please answer 'y' (answer) or 'n' (non-answer)")

    def ask_many(self, questions: Sequence[Question]) -> list[bool]:
        """A person labels one question at a time: fall back to a loop.

        Batching cannot change what a human sees, so the batched protocol
        degrades to the sequential prompts — the terminal is the latency
        floor here, not the oracle.
        """
        return [self.ask(q) for q in questions]
