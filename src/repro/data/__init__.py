"""The nested-relational data domain (§2, Fig. 1).

Schemas, relations, proposition vocabularies with interference checking,
Boolean-tuple→row synthesis, question rendering, and a query engine.
"""

from repro.data.backends import (
    BACKENDS,
    REGISTRY,
    BackendCapabilities,
    BackendLoadError,
    BackendRegistry,
    BitmaskBackend,
    DbApiBackend,
    EvaluationBackend,
    PooledConnectionSource,
    ShardedBitmaskBackend,
    SqlBackend,
    coerce_option,
    create_backend,
    parse_backend_opts,
)
from repro.data.engine import ExampleFactory, ExpressionReport, QueryEngine
from repro.data.index import RelationIndex
from repro.data.generator import (
    RelationGenerator,
    bernoulli,
    categorical,
    uniform_float,
    uniform_int,
)
from repro.data.sql import (
    DIALECTS,
    SqlDialect,
    SqliteEngine,
    get_dialect,
    to_sql,
)
from repro.data.propositions import (
    Between,
    BoolIs,
    Equals,
    GreaterThan,
    InterferenceError,
    InterferenceReport,
    LessThan,
    OneOf,
    Proposition,
    Vocabulary,
)
from repro.data.relation import FlatRelation, NestedObject, NestedRelation
from repro.data.schema import (
    Attribute,
    AttributeType,
    FlatSchema,
    NestedSchema,
    SchemaError,
)

__all__ = [
    "Attribute",
    "AttributeType",
    "BACKENDS",
    "BackendCapabilities",
    "BackendLoadError",
    "BackendRegistry",
    "Between",
    "BitmaskBackend",
    "BoolIs",
    "DIALECTS",
    "DbApiBackend",
    "EvaluationBackend",
    "PooledConnectionSource",
    "REGISTRY",
    "ShardedBitmaskBackend",
    "SqlBackend",
    "SqlDialect",
    "coerce_option",
    "create_backend",
    "get_dialect",
    "parse_backend_opts",
    "RelationGenerator",
    "SqliteEngine",
    "bernoulli",
    "categorical",
    "to_sql",
    "uniform_float",
    "uniform_int",
    "Equals",
    "ExampleFactory",
    "ExpressionReport",
    "FlatRelation",
    "FlatSchema",
    "GreaterThan",
    "InterferenceError",
    "InterferenceReport",
    "LessThan",
    "NestedObject",
    "NestedRelation",
    "NestedSchema",
    "OneOf",
    "Proposition",
    "QueryEngine",
    "RelationIndex",
    "SchemaError",
    "Vocabulary",
]
