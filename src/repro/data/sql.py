"""SQL compilation: qhorn queries as real database queries.

The paper's motivation is that SQL forces users to write quantified queries
directly (§1).  This module closes the loop: a learned
:class:`~repro.core.query.QhornQuery` compiles to portable SQL over the
standard two-table encoding of a single-level nested relation

    objects(object_key PRIMARY KEY, ...object attributes)
    rows(object_key REFERENCES objects, ...embedded attributes)

using the classic translation of quantifiers:

* ``∀t ∈ S (B → h)``  →  ``NOT EXISTS (row with B true and h false)``
  plus its guarantee clause ``EXISTS (row with B and h true)``;
* ``∃t ∈ S (C)``      →  ``EXISTS (row with C true)``.

:class:`SqliteEngine` loads a :class:`~repro.data.relation.NestedRelation`
into an in-memory SQLite database and executes the generated SQL — the
test-suite cross-checks it against the in-process
:class:`~repro.data.engine.QueryEngine` on every query, so the two
evaluators validate each other.
"""

from __future__ import annotations

import re
import sqlite3
from dataclasses import dataclass, field
from typing import Any, Iterable

from repro.core.query import QhornQuery
from repro.data.propositions import (
    Between,
    BoolIs,
    Equals,
    GreaterThan,
    LessThan,
    OneOf,
    Proposition,
    Vocabulary,
)
from repro.data.relation import NestedRelation
from repro.data.schema import AttributeType

__all__ = [
    "DIALECTS",
    "SqlDialect",
    "SqliteEngine",
    "SqlCompileError",
    "get_dialect",
    "proposition_to_sql",
    "to_sql",
]


class SqlCompileError(ValueError):
    """Raised when a proposition cannot be rendered as SQL."""


_PLAIN_IDENTIFIER = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")


@dataclass(frozen=True)
class SqlDialect:
    """How one database family spells the SQL we generate (DESIGN.md §2i).

    The compiled query shape (EXISTS/NOT EXISTS per quantifier) is
    portable; what varies across DB-API drivers is the *spelling*:
    placeholder style for parameterized statements, identifier quoting
    and reserved words, literal rendering (SQLite spells booleans 1/0,
    postgres TRUE/FALSE), and the column-type names used when loading a
    relation.  ``proposition_to_sql``/``to_sql`` take a dialect so the
    same :class:`~repro.core.query.QhornQuery` answers identically on
    SQLite today and any DB-API driver tomorrow.
    """

    name: str
    #: DB-API paramstyle for bind parameters: qmark | format | pyformat.
    paramstyle: str = "qmark"
    true_literal: str = "1"
    false_literal: str = "0"
    #: Identifiers needing quotes even though they look plain.
    reserved: frozenset[str] = field(default_factory=frozenset)
    #: AttributeType name → column type name.
    type_names: dict[str, str] = field(default_factory=dict)

    def literal(self, value: Any) -> str:
        """Render a constant as an inline SQL literal."""
        if isinstance(value, bool):
            return self.true_literal if value else self.false_literal
        if isinstance(value, (int, float)):
            return repr(value)
        if isinstance(value, str):
            return "'" + value.replace("'", "''") + "'"
        raise SqlCompileError(f"cannot render literal {value!r}")

    def identifier(self, name: str) -> str:
        """Quote an identifier when the dialect requires it."""
        if _PLAIN_IDENTIFIER.match(name) and name.lower() not in self.reserved:
            return name
        return '"' + name.replace('"', '""') + '"'

    def placeholder(self, index: int = 0, name: str | None = None) -> str:
        """One bind-parameter marker in the dialect's paramstyle."""
        if self.paramstyle == "qmark":
            return "?"
        if self.paramstyle == "format":
            return "%s"
        if self.paramstyle == "pyformat":
            return f"%({name or f'p{index}'})s"
        raise SqlCompileError(
            f"unsupported paramstyle {self.paramstyle!r} "
            f"(expected qmark, format or pyformat)"
        )

    def placeholders(self, names: Iterable[str]) -> str:
        """Comma-joined markers for an INSERT values list."""
        return ", ".join(
            self.placeholder(i, name) for i, name in enumerate(names)
        )

    def column_type(self, attr_type: AttributeType) -> str:
        """Column type name for one schema attribute type."""
        return self.type_names.get(attr_type.name, "TEXT")

    def render_in(self, column: str, values: Iterable[str]) -> str:
        """``col IN (v1, v2, ...)`` — values already rendered as literals."""
        return f"{column} IN ({', '.join(values)})"

    def render_exists(self, body: str, negate: bool = False) -> str:
        """``[NOT ] EXISTS (body)`` — the quantifier-translation kernel."""
        return f"{'NOT ' if negate else ''}EXISTS ({body})"


#: SQLite: the PR 3 rendering, verbatim — qmark placeholders, 1/0
#: booleans, nothing quoted (SQLite accepts keyword-ish names bare).
SQLITE_DIALECT = SqlDialect(
    name="sqlite",
    paramstyle="qmark",
    type_names={
        "BOOLEAN": "INTEGER",
        "INTEGER": "INTEGER",
        "FLOAT": "REAL",
        "CATEGORY": "TEXT",
    },
)

#: Postgres-style DB-API drivers: %s placeholders (psycopg paramstyle),
#: TRUE/FALSE booleans, reserved words quoted (our row table is ROWS,
#: a reserved word in standard SQL).
POSTGRES_DIALECT = SqlDialect(
    name="postgres",
    paramstyle="format",
    true_literal="TRUE",
    false_literal="FALSE",
    reserved=frozenset(
        {
            "all", "and", "any", "between", "case", "cast", "check",
            "column", "default", "distinct", "end", "exists", "from",
            "group", "in", "like", "limit", "not", "offset", "order",
            "primary", "references", "rows", "select", "table", "user",
            "when", "where", "window",
        }
    ),
    type_names={
        "BOOLEAN": "BOOLEAN",
        "INTEGER": "INTEGER",
        "FLOAT": "DOUBLE PRECISION",
        "CATEGORY": "TEXT",
    },
)

#: Dialects by name — the ``--backend-opt dialect=...`` vocabulary.
DIALECTS: dict[str, SqlDialect] = {
    SQLITE_DIALECT.name: SQLITE_DIALECT,
    POSTGRES_DIALECT.name: POSTGRES_DIALECT,
}


def get_dialect(dialect: SqlDialect | str | None) -> SqlDialect:
    """Resolve a dialect argument: instance, registry name, or default."""
    if dialect is None:
        return SQLITE_DIALECT
    if isinstance(dialect, SqlDialect):
        return dialect
    try:
        return DIALECTS[dialect]
    except KeyError:
        raise SqlCompileError(
            f"unknown SQL dialect {dialect!r}; "
            f"choices: {', '.join(sorted(DIALECTS))}"
        ) from None


def _literal(value: Any) -> str:
    return SQLITE_DIALECT.literal(value)


def proposition_to_sql(
    prop: Proposition,
    alias: str = "r",
    dialect: SqlDialect | str | None = None,
) -> str:
    """Render one proposition as a SQL predicate over row alias ``alias``."""
    d = get_dialect(dialect)
    col = f"{alias}.{d.identifier(prop.attribute)}"
    if isinstance(prop, BoolIs):
        return f"{col} = {d.literal(prop.value)}"
    if isinstance(prop, Equals):
        return f"{col} = {d.literal(prop.constant)}"
    if isinstance(prop, OneOf):
        values = [d.literal(v) for v in sorted(prop.constants, key=str)]
        return d.render_in(col, values)
    if isinstance(prop, LessThan):
        return f"{col} < {d.literal(prop.constant)}"
    if isinstance(prop, GreaterThan):
        return f"{col} > {d.literal(prop.constant)}"
    if isinstance(prop, Between):
        return (
            f"{col} BETWEEN {d.literal(prop.lo)} AND {d.literal(prop.hi)}"
        )
    raise SqlCompileError(f"no SQL rendering for {type(prop).__name__}")


def _exists(
    vocabulary: Vocabulary,
    true_vars: Iterable[int],
    false_vars: Iterable[int] = (),
    negate: bool = False,
    dialect: SqlDialect = SQLITE_DIALECT,
    rows_table: str | None = None,
) -> str:
    if rows_table is None:
        rows_table = dialect.identifier("rows")
    conds = ["r.object_key = o.object_key"]
    for v in true_vars:
        conds.append(
            proposition_to_sql(vocabulary.propositions[v], dialect=dialect)
        )
    for v in false_vars:
        rendered = proposition_to_sql(
            vocabulary.propositions[v], dialect=dialect
        )
        conds.append(f"NOT ({rendered})")
    body = (
        f"SELECT 1 FROM {rows_table} r WHERE " + " AND ".join(conds)
    )
    return dialect.render_exists(body, negate=negate)


def to_sql(
    query: QhornQuery,
    vocabulary: Vocabulary,
    dialect: SqlDialect | str | None = None,
    objects_table: str = "objects",
    rows_table: str = "rows",
) -> str:
    """Compile ``query`` to a SQL statement selecting answer object keys.

    ``objects_table``/``rows_table`` override the standard two-table
    names — the seam that lets :class:`~repro.oracle.SqlQueryOracle`
    keep its scratch tables in the *same* database as a loaded
    :class:`~repro.data.backends.dbapi.DbApiBackend` relation without
    clobbering it (DESIGN.md §2j).
    """
    d = get_dialect(dialect)
    if query.n != vocabulary.n:
        raise SqlCompileError(
            f"query over n={query.n} propositions, vocabulary has "
            f"{vocabulary.n}"
        )
    rows_identifier = d.identifier(rows_table)
    clauses: list[str] = []
    for u in sorted(query.universals):
        # ∀ B → h: no row with B true and h false …
        clauses.append(
            _exists(
                vocabulary,
                sorted(u.body),
                [u.head],
                negate=True,
                dialect=d,
                rows_table=rows_identifier,
            )
        )
        if query.require_guarantees:
            # … and a witness row with B ∧ h true (qhorn property 2).
            clauses.append(
                _exists(
                    vocabulary,
                    sorted(u.variables),
                    dialect=d,
                    rows_table=rows_identifier,
                )
            )
    for e in sorted(query.existentials):
        clauses.append(
            _exists(
                vocabulary,
                sorted(e.variables),
                dialect=d,
                rows_table=rows_identifier,
            )
        )
    where = "\n  AND ".join(clauses) if clauses else "1 = 1"
    return (
        f"SELECT o.object_key FROM {d.identifier(objects_table)} o\nWHERE "
        + where
        + "\nORDER BY o.object_key"
    )


class SqliteEngine:
    """Executes compiled qhorn SQL against an in-memory SQLite database.

    The nested relation is loaded once into the two-table encoding; every
    :meth:`execute` call compiles the query and runs it, returning the
    matching object keys.  The engine snapshots the relation's ``version``
    counter at load time: :attr:`is_stale` / :meth:`refresh` implement the
    same staleness contract as :class:`~repro.data.index.RelationIndex`,
    so backend layers can keep the database in step with inserts.
    """

    def __init__(
        self, relation: NestedRelation, vocabulary: Vocabulary
    ) -> None:
        self.relation = relation
        self.vocabulary = vocabulary
        self.connection = sqlite3.connect(":memory:")
        self._load()

    @property
    def is_stale(self) -> bool:
        """Has the relation been mutated since the database was loaded?"""
        return getattr(self.relation, "version", None) != self._loaded_version

    def refresh(self, force: bool = False) -> bool:
        """Reload the database if stale (or unconditionally with
        ``force``); returns whether a reload happened."""
        if force or self.is_stale:
            cur = self.connection.cursor()
            cur.execute("DROP TABLE IF EXISTS rows")
            cur.execute("DROP TABLE IF EXISTS objects")
            self._load()
            return True
        return False

    def _column_type(self, attr_type: AttributeType) -> str:
        return SQLITE_DIALECT.column_type(attr_type)

    def _load(self) -> None:
        schema = self.relation.schema
        cur = self.connection.cursor()
        object_cols = "".join(
            f", {a.name} {self._column_type(a.type)}"
            for a in schema.object_attributes
        )
        cur.execute(
            f"CREATE TABLE objects (object_key TEXT PRIMARY KEY{object_cols})"
        )
        row_cols = ", ".join(
            f"{a.name} {self._column_type(a.type)}"
            for a in schema.embedded.attributes
        )
        cur.execute(
            "CREATE TABLE rows (object_key TEXT REFERENCES objects, "
            + row_cols
            + ")"
        )
        cur.execute(
            "CREATE INDEX rows_by_object ON rows (object_key)"
        )
        for obj in self.relation:
            names = [a.name for a in schema.object_attributes]
            cur.execute(
                "INSERT INTO objects VALUES (?"
                + ", ?" * len(names)
                + ")",
                [obj.key] + [obj.attributes.get(n) for n in names],
            )
            row_names = schema.embedded.attribute_names
            for row in obj.rows:
                cur.execute(
                    "INSERT INTO rows VALUES (?"
                    + ", ?" * len(row_names)
                    + ")",
                    [obj.key] + [row[n] for n in row_names],
                )
        self.connection.commit()
        self._loaded_version = getattr(self.relation, "version", None)

    def execute(self, query: QhornQuery) -> list[str]:
        """Answer object keys, sorted, via the compiled SQL."""
        sql = to_sql(query, self.vocabulary)
        return [row[0] for row in self.connection.execute(sql)]

    def explain_plan(self, query: QhornQuery) -> list[str]:
        """SQLite's query plan for the compiled statement (for curiosity)."""
        sql = to_sql(query, self.vocabulary)
        return [
            str(row)
            for row in self.connection.execute("EXPLAIN QUERY PLAN " + sql)
        ]

    def close(self) -> None:
        self.connection.close()

    def __enter__(self) -> "SqliteEngine":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
