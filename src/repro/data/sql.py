"""SQL compilation: qhorn queries as real database queries.

The paper's motivation is that SQL forces users to write quantified queries
directly (§1).  This module closes the loop: a learned
:class:`~repro.core.query.QhornQuery` compiles to portable SQL over the
standard two-table encoding of a single-level nested relation

    objects(object_key PRIMARY KEY, ...object attributes)
    rows(object_key REFERENCES objects, ...embedded attributes)

using the classic translation of quantifiers:

* ``∀t ∈ S (B → h)``  →  ``NOT EXISTS (row with B true and h false)``
  plus its guarantee clause ``EXISTS (row with B and h true)``;
* ``∃t ∈ S (C)``      →  ``EXISTS (row with C true)``.

:class:`SqliteEngine` loads a :class:`~repro.data.relation.NestedRelation`
into an in-memory SQLite database and executes the generated SQL — the
test-suite cross-checks it against the in-process
:class:`~repro.data.engine.QueryEngine` on every query, so the two
evaluators validate each other.
"""

from __future__ import annotations

import sqlite3
from typing import Any, Iterable

from repro.core.query import QhornQuery
from repro.data.propositions import (
    Between,
    BoolIs,
    Equals,
    GreaterThan,
    LessThan,
    OneOf,
    Proposition,
    Vocabulary,
)
from repro.data.relation import NestedRelation
from repro.data.schema import AttributeType

__all__ = ["proposition_to_sql", "to_sql", "SqliteEngine", "SqlCompileError"]


class SqlCompileError(ValueError):
    """Raised when a proposition cannot be rendered as SQL."""


def _literal(value: Any) -> str:
    if isinstance(value, bool):
        return "1" if value else "0"
    if isinstance(value, (int, float)):
        return repr(value)
    if isinstance(value, str):
        return "'" + value.replace("'", "''") + "'"
    raise SqlCompileError(f"cannot render literal {value!r}")


def proposition_to_sql(prop: Proposition, alias: str = "r") -> str:
    """Render one proposition as a SQL predicate over row alias ``alias``."""
    col = f"{alias}.{prop.attribute}"
    if isinstance(prop, BoolIs):
        return f"{col} = {_literal(prop.value)}"
    if isinstance(prop, Equals):
        return f"{col} = {_literal(prop.constant)}"
    if isinstance(prop, OneOf):
        values = ", ".join(
            _literal(v) for v in sorted(prop.constants, key=str)
        )
        return f"{col} IN ({values})"
    if isinstance(prop, LessThan):
        return f"{col} < {_literal(prop.constant)}"
    if isinstance(prop, GreaterThan):
        return f"{col} > {_literal(prop.constant)}"
    if isinstance(prop, Between):
        return (
            f"{col} BETWEEN {_literal(prop.lo)} AND {_literal(prop.hi)}"
        )
    raise SqlCompileError(f"no SQL rendering for {type(prop).__name__}")


def _exists(
    vocabulary: Vocabulary,
    true_vars: Iterable[int],
    false_vars: Iterable[int] = (),
    negate: bool = False,
) -> str:
    conds = ["r.object_key = o.object_key"]
    for v in true_vars:
        conds.append(proposition_to_sql(vocabulary.propositions[v]))
    for v in false_vars:
        conds.append(
            f"NOT ({proposition_to_sql(vocabulary.propositions[v])})"
        )
    body = (
        "SELECT 1 FROM rows r WHERE " + " AND ".join(conds)
    )
    return f"{'NOT ' if negate else ''}EXISTS ({body})"


def to_sql(query: QhornQuery, vocabulary: Vocabulary) -> str:
    """Compile ``query`` to a SQL statement selecting answer object keys."""
    if query.n != vocabulary.n:
        raise SqlCompileError(
            f"query over n={query.n} propositions, vocabulary has "
            f"{vocabulary.n}"
        )
    clauses: list[str] = []
    for u in sorted(query.universals):
        # ∀ B → h: no row with B true and h false …
        clauses.append(
            _exists(vocabulary, sorted(u.body), [u.head], negate=True)
        )
        if query.require_guarantees:
            # … and a witness row with B ∧ h true (qhorn property 2).
            clauses.append(_exists(vocabulary, sorted(u.variables)))
    for e in sorted(query.existentials):
        clauses.append(_exists(vocabulary, sorted(e.variables)))
    where = "\n  AND ".join(clauses) if clauses else "1 = 1"
    return (
        "SELECT o.object_key FROM objects o\nWHERE "
        + where
        + "\nORDER BY o.object_key"
    )


class SqliteEngine:
    """Executes compiled qhorn SQL against an in-memory SQLite database.

    The nested relation is loaded once into the two-table encoding; every
    :meth:`execute` call compiles the query and runs it, returning the
    matching object keys.  The engine snapshots the relation's ``version``
    counter at load time: :attr:`is_stale` / :meth:`refresh` implement the
    same staleness contract as :class:`~repro.data.index.RelationIndex`,
    so backend layers can keep the database in step with inserts.
    """

    def __init__(
        self, relation: NestedRelation, vocabulary: Vocabulary
    ) -> None:
        self.relation = relation
        self.vocabulary = vocabulary
        self.connection = sqlite3.connect(":memory:")
        self._load()

    @property
    def is_stale(self) -> bool:
        """Has the relation been mutated since the database was loaded?"""
        return getattr(self.relation, "version", None) != self._loaded_version

    def refresh(self, force: bool = False) -> bool:
        """Reload the database if stale (or unconditionally with
        ``force``); returns whether a reload happened."""
        if force or self.is_stale:
            cur = self.connection.cursor()
            cur.execute("DROP TABLE IF EXISTS rows")
            cur.execute("DROP TABLE IF EXISTS objects")
            self._load()
            return True
        return False

    def _column_type(self, attr_type: AttributeType) -> str:
        if attr_type in (AttributeType.BOOLEAN, AttributeType.INTEGER):
            return "INTEGER"
        if attr_type is AttributeType.FLOAT:
            return "REAL"
        return "TEXT"

    def _load(self) -> None:
        schema = self.relation.schema
        cur = self.connection.cursor()
        object_cols = "".join(
            f", {a.name} {self._column_type(a.type)}"
            for a in schema.object_attributes
        )
        cur.execute(
            f"CREATE TABLE objects (object_key TEXT PRIMARY KEY{object_cols})"
        )
        row_cols = ", ".join(
            f"{a.name} {self._column_type(a.type)}"
            for a in schema.embedded.attributes
        )
        cur.execute(
            "CREATE TABLE rows (object_key TEXT REFERENCES objects, "
            + row_cols
            + ")"
        )
        cur.execute(
            "CREATE INDEX rows_by_object ON rows (object_key)"
        )
        for obj in self.relation:
            names = [a.name for a in schema.object_attributes]
            cur.execute(
                "INSERT INTO objects VALUES (?"
                + ", ?" * len(names)
                + ")",
                [obj.key] + [obj.attributes.get(n) for n in names],
            )
            row_names = schema.embedded.attribute_names
            for row in obj.rows:
                cur.execute(
                    "INSERT INTO rows VALUES (?"
                    + ", ?" * len(row_names)
                    + ")",
                    [obj.key] + [row[n] for n in row_names],
                )
        self.connection.commit()
        self._loaded_version = getattr(self.relation, "version", None)

    def execute(self, query: QhornQuery) -> list[str]:
        """Answer object keys, sorted, via the compiled SQL."""
        sql = to_sql(query, self.vocabulary)
        return [row[0] for row in self.connection.execute(sql)]

    def explain_plan(self, query: QhornQuery) -> list[str]:
        """SQLite's query plan for the compiled statement (for curiosity)."""
        sql = to_sql(query, self.vocabulary)
        return [
            str(row)
            for row in self.connection.execute("EXPLAIN QUERY PLAN " + sql)
        ]

    def close(self) -> None:
        self.connection.close()

    def __enter__(self) -> "SqliteEngine":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
