"""Schemas for flat and nested relations (Defs. 2.1–2.3).

The paper's data model is a nested relation with single-level nesting: each
*object* (e.g. a chocolate box) carries scalar attributes plus a set of
*tuples* from an embedded flat relation (the chocolates).  Schemas here are
declarative and validated, so the proposition layer can reason about
attribute types and value universes when synthesizing example rows.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Mapping

__all__ = ["AttributeType", "Attribute", "FlatSchema", "NestedSchema", "SchemaError"]


class SchemaError(ValueError):
    """Raised when data does not conform to a schema."""


class AttributeType(enum.Enum):
    """Scalar attribute types supported by the proposition layer."""

    BOOLEAN = "boolean"
    INTEGER = "integer"
    FLOAT = "float"
    CATEGORY = "category"

    def validate(self, value: Any) -> bool:
        if self is AttributeType.BOOLEAN:
            return isinstance(value, bool)
        if self is AttributeType.INTEGER:
            return isinstance(value, int) and not isinstance(value, bool)
        if self is AttributeType.FLOAT:
            return isinstance(value, (int, float)) and not isinstance(value, bool)
        if self is AttributeType.CATEGORY:
            return isinstance(value, str)
        return False  # pragma: no cover - enum is closed


@dataclass(frozen=True)
class Attribute:
    """One column of a flat relation.

    ``universe`` optionally lists the known values of a CATEGORY attribute;
    ``open_universe`` declares whether values outside it may occur (the
    synthesizer uses this to construct rows falsifying every equality
    proposition at once).
    """

    name: str
    type: AttributeType
    universe: tuple = ()
    open_universe: bool = True

    def __post_init__(self) -> None:
        if not self.name.isidentifier():
            raise SchemaError(f"invalid attribute name {self.name!r}")
        for v in self.universe:
            if not self.type.validate(v):
                raise SchemaError(
                    f"universe value {v!r} is not of type {self.type.value}"
                )

    @staticmethod
    def boolean(name: str) -> "Attribute":
        return Attribute(name, AttributeType.BOOLEAN)

    @staticmethod
    def integer(name: str) -> "Attribute":
        return Attribute(name, AttributeType.INTEGER)

    @staticmethod
    def real(name: str) -> "Attribute":
        return Attribute(name, AttributeType.FLOAT)

    @staticmethod
    def category(
        name: str, universe: tuple = (), open_universe: bool = True
    ) -> "Attribute":
        return Attribute(
            name, AttributeType.CATEGORY, tuple(universe), open_universe
        )


@dataclass(frozen=True)
class FlatSchema:
    """Def. 2.3: a relation whose domains are all scalar."""

    name: str
    attributes: tuple[Attribute, ...]

    def __post_init__(self) -> None:
        names = [a.name for a in self.attributes]
        if len(names) != len(set(names)):
            raise SchemaError(f"duplicate attribute names in {self.name}")
        if not self.attributes:
            raise SchemaError("a schema needs at least one attribute")

    def attribute(self, name: str) -> Attribute:
        for a in self.attributes:
            if a.name == name:
                return a
        raise SchemaError(f"{self.name} has no attribute {name!r}")

    @property
    def attribute_names(self) -> tuple[str, ...]:
        return tuple(a.name for a in self.attributes)

    def validate_row(self, row: Mapping[str, Any]) -> None:
        """Raise :class:`SchemaError` unless ``row`` matches the schema."""
        extra = set(row) - set(self.attribute_names)
        if extra:
            raise SchemaError(f"unknown attributes {sorted(extra)} for {self.name}")
        for a in self.attributes:
            if a.name not in row:
                raise SchemaError(f"{self.name} row missing {a.name!r}")
            if not a.type.validate(row[a.name]):
                raise SchemaError(
                    f"{self.name}.{a.name}={row[a.name]!r} is not "
                    f"{a.type.value}"
                )


@dataclass(frozen=True)
class NestedSchema:
    """Def. 2.2 with single-level nesting: scalar object attributes plus one
    embedded flat relation (the paper's ``Box(name, Chocolate(...))``)."""

    name: str
    embedded: FlatSchema
    object_attributes: tuple[Attribute, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        names = [a.name for a in self.object_attributes]
        if len(names) != len(set(names)):
            raise SchemaError(f"duplicate object attribute names in {self.name}")

    def validate_object_attributes(self, attrs: Mapping[str, Any]) -> None:
        extra = set(attrs) - {a.name for a in self.object_attributes}
        if extra:
            raise SchemaError(
                f"unknown object attributes {sorted(extra)} for {self.name}"
            )
        for a in self.object_attributes:
            if a.name in attrs and not a.type.validate(attrs[a.name]):
                raise SchemaError(
                    f"{self.name}.{a.name}={attrs[a.name]!r} is not "
                    f"{a.type.value}"
                )
