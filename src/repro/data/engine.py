"""Executing qhorn queries over nested relations, and rendering questions.

This is the database side of the paper: a :class:`QueryEngine` evaluates a
Boolean-domain :class:`~repro.core.query.QhornQuery` against real nested
data through a vocabulary, and an :class:`ExampleFactory` turns membership
questions into concrete example objects — synthesizing rows (assumption (i))
or, as §5 suggests for rich databases, selecting matching rows from an
actual relation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.core.query import QhornQuery
from repro.core.tuples import Question
from repro.data.propositions import Vocabulary
from repro.data.relation import NestedObject, NestedRelation

__all__ = ["ExpressionReport", "QueryEngine", "ExampleFactory"]


@dataclass(frozen=True)
class ExpressionReport:
    """Why one expression of a query holds or fails on an object."""

    expression: str
    satisfied: bool
    detail: str


class QueryEngine:
    """Evaluates queries over a nested relation via a vocabulary."""

    def __init__(self, relation: NestedRelation, vocabulary: Vocabulary) -> None:
        self.relation = relation
        self.vocabulary = vocabulary

    def matches(self, query: QhornQuery, obj: NestedObject) -> bool:
        """Does ``obj`` satisfy ``query``?"""
        self._check(query)
        return query.evaluate(self.vocabulary.abstract_object(obj.rows))

    def execute(self, query: QhornQuery) -> list[NestedObject]:
        """All objects of the relation that are answers to ``query``."""
        self._check(query)
        return [o for o in self.relation if self.matches(query, o)]

    def explain(self, query: QhornQuery, obj: NestedObject) -> list[ExpressionReport]:
        """Per-expression satisfaction report for ``obj`` (UI affordance)."""
        self._check(query)
        tuples = self.vocabulary.abstract_object(obj.rows)
        reports: list[ExpressionReport] = []
        for u in sorted(query.universals):
            violating = [t for t in tuples if u.violated_by(t)]
            witness = any(
                (t & u.body_mask) == u.body_mask and t & u.head_mask
                for t in tuples
            )
            if violating:
                detail = f"{len(violating)} tuple(s) violate the implication"
            elif query.require_guarantees and not witness:
                detail = "guarantee clause has no witness tuple"
            else:
                detail = "holds on every tuple, witness present"
            reports.append(
                ExpressionReport(
                    expression=str(u),
                    satisfied=not violating
                    and (witness or not query.require_guarantees),
                    detail=detail,
                )
            )
        for e in sorted(query.existentials):
            sat = e.holds_on(tuples)
            reports.append(
                ExpressionReport(
                    expression=str(e),
                    satisfied=sat,
                    detail="witness tuple present" if sat else "no witness tuple",
                )
            )
        return reports

    def _check(self, query: QhornQuery) -> None:
        if query.n != self.vocabulary.n:
            raise ValueError(
                f"query over n={query.n} propositions, vocabulary has "
                f"{self.vocabulary.n}"
            )


class ExampleFactory:
    """Turns Boolean membership questions into concrete example objects."""

    def __init__(
        self,
        vocabulary: Vocabulary,
        database: NestedRelation | None = None,
        key_prefix: str = "example",
    ) -> None:
        self.vocabulary = vocabulary
        self.database = database
        self.key_prefix = key_prefix
        self._counter = 0
        self._row_index: dict[int, list[dict[str, Any]]] | None = None

    def _next_key(self) -> str:
        self._counter += 1
        return f"{self.key_prefix}-{self._counter}"

    def synthesize(self, question: Question) -> NestedObject:
        """Assumption (i): build rows directly from the Boolean tuples."""
        rows = self.vocabulary.synthesize_object(question)
        return NestedObject(key=self._next_key(), rows=rows)

    def from_database(self, question: Question) -> NestedObject:
        """§5: prefer real database rows matching each Boolean tuple, so the
        user never sees artificial hybrids; falls back to synthesis for
        tuples the database cannot exhibit."""
        if self.database is None:
            return self.synthesize(question)
        if self._row_index is None:
            self._row_index = {}
            for row in self.database.all_rows():
                mask = self.vocabulary.boolean_tuple(row)
                self._row_index.setdefault(mask, []).append(row)
        rows: list[dict[str, Any]] = []
        for t in question.sorted_tuples():
            matches = self._row_index.get(t)
            if matches:
                rows.append(dict(matches[0]))
            else:
                rows.append(self.vocabulary.synthesize_row(t))
        return NestedObject(key=self._next_key(), rows=rows)
