"""Executing qhorn queries over nested relations, and rendering questions.

This is the database side of the paper: a :class:`QueryEngine` evaluates a
Boolean-domain :class:`~repro.core.query.QhornQuery` against real nested
data through a vocabulary, and an :class:`ExampleFactory` turns membership
questions into concrete example objects — synthesizing rows (assumption (i))
or, as §5 suggests for rich databases, selecting matching rows from an
actual relation.

Two evaluation paths coexist (DESIGN.md §2): the per-object *reference
path* (:meth:`QueryEngine.matches` / :meth:`QueryEngine.execute`), which
abstracts rows on every call, and the *batch path*
(:meth:`QueryEngine.execute_batch` / :meth:`QueryEngine.matches_many`),
which dispatches to a pluggable
:class:`~repro.data.backends.EvaluationBackend` (DESIGN.md §2c) —
single bitmask index, sharded bitmask blocks, the packed numpy kernel,
or SQL batch execution.  Every backend must return identical answers on
identical state.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass
from typing import Any, Iterable

from repro.core.query import QhornQuery
from repro.core.tuples import Question
from repro.data.backends import (
    REGISTRY,
    BitmaskBackend,
    EvaluationBackend,
    create_backend,
)
from repro.data.backends.base import check_width
from repro.data.index import RelationIndex
from repro.data.propositions import Vocabulary
from repro.data.relation import NestedObject, NestedRelation

__all__ = ["ExpressionReport", "QueryEngine", "ExampleFactory"]


@dataclass(frozen=True)
class ExpressionReport:
    """Why one expression of a query holds or fails on an object."""

    expression: str
    satisfied: bool
    detail: str


class QueryEngine:
    """Evaluates queries over a nested relation via a vocabulary.

    The batch evaluation methods dispatch to a pluggable
    :class:`~repro.data.backends.EvaluationBackend` (``backend=`` accepts
    a registry name — ``"bitmask"``, ``"sharded"``, ``"numpy"``,
    ``"sql"`` — or a
    constructed backend instance; backends build lazily on first batch
    call).  The per-object methods keep the seed reference semantics
    regardless of backend.  ``index=`` — the pre-seam shortcut of
    injecting a shared :class:`RelationIndex` — is deprecated: it now
    warns and routes through ``backend="bitmask"``,
    ``backend_options={"index": index}`` (DESIGN.md §2i).
    """

    def __init__(
        self,
        relation: NestedRelation,
        vocabulary: Vocabulary,
        index: RelationIndex | None = None,
        backend: str | EvaluationBackend = "bitmask",
        backend_options: dict[str, Any] | None = None,
    ) -> None:
        self.relation = relation
        self.vocabulary = vocabulary
        if index is not None:
            # PR 3 back-compat shortcut, deprecated by the v2 plugin API
            # (DESIGN.md §2i): route through the same backend=/
            # backend_options= path every other construction takes.
            warnings.warn(
                'QueryEngine(index=...) is deprecated; pass '
                'backend="bitmask", backend_options={"index": index} '
                "instead (DESIGN.md §2i)",
                DeprecationWarning,
                stacklevel=2,
            )
            if not (backend == "bitmask" or isinstance(backend, BitmaskBackend)):
                raise ValueError(
                    "index= injects a RelationIndex and requires the "
                    "bitmask backend"
                )
            backend = "bitmask"
            backend_options = dict(backend_options or {}, index=index)
        if isinstance(backend, str):
            # Validate the name eagerly (fail at construction, not first
            # batch call) but build the backend lazily.
            self._backend: EvaluationBackend | None = None
            self._backend_spec = backend
            self._backend_options = dict(backend_options or {})
            if backend not in REGISTRY:
                raise ValueError(REGISTRY.unknown_backend_message(backend))
        else:
            if backend.relation is not relation:
                raise ValueError(
                    "backend was built over a different relation"
                )
            if backend_options:
                raise ValueError(
                    "backend_options only apply when the backend is "
                    "selected by name; configure the instance directly"
                )
            self._backend = backend
            self._backend_spec = backend.name
            self._backend_options = {}

    @property
    def backend(self) -> EvaluationBackend:
        """The engine's evaluation backend, built on first access."""
        if self._backend is None:
            self._backend = create_backend(
                self._backend_spec,
                self.relation,
                self.vocabulary,
                **self._backend_options,
            )
        return self._backend

    @property
    def backend_name(self) -> str:
        """Registry name of the active backend (without building it)."""
        return self._backend_spec

    @property
    def index(self) -> RelationIndex:
        """The engine's bitmask relation index, built on first access.

        For the bitmask backend this *is* the evaluation structure; for
        other backends it is an introspection view (mask statistics,
        shared-index reuse) built independently of the answering path.
        """
        backend = self.backend
        if isinstance(backend, BitmaskBackend):
            return backend.index
        if getattr(self, "_intro_index", None) is None:
            self._intro_index = RelationIndex(self.relation, self.vocabulary)
        return self._intro_index

    def matches(self, query: QhornQuery, obj: NestedObject) -> bool:
        """Does ``obj`` satisfy ``query``?  (Per-object reference path.)"""
        self._check(query)
        return query.evaluate(self.vocabulary.abstract_object(obj.rows))

    def execute(self, query: QhornQuery) -> list[NestedObject]:
        """All objects of the relation that are answers to ``query``.

        Per-object reference path: validates the query once, then
        re-abstracts each object's rows and evaluates directly (the seed
        re-ran the validation through ``matches()`` for every object).
        """
        self._check(query)
        abstract = self.vocabulary.abstract_object
        evaluate = query.evaluate
        return [o for o in self.relation if evaluate(abstract(o.rows))]

    def execute_batch(self, query: QhornQuery) -> list[NestedObject]:
        """All answers to ``query`` via the evaluation backend.

        Identical answers to :meth:`execute` whatever the backend; the
        backend amortizes row abstraction (or database loading) across
        calls (DESIGN.md §2, §2c).
        """
        self._check(query)
        return self.backend.execute(query)

    def matches_many(
        self,
        query: QhornQuery,
        objects: Iterable[NestedObject] | None = None,
    ) -> list[bool]:
        """Answer labels for many objects at once via the backend.

        ``objects=None`` labels every object of the relation in relation
        order; otherwise labels the given objects (foreign objects are
        abstracted once and evaluated through the compiled query).
        """
        self._check(query)
        return self.backend.matches_many(query, objects)

    def explain(self, query: QhornQuery, obj: NestedObject) -> list[ExpressionReport]:
        """Per-expression satisfaction report for ``obj`` (UI affordance)."""
        self._check(query)
        tuples = self.vocabulary.abstract_object(obj.rows)
        reports: list[ExpressionReport] = []
        for u in sorted(query.universals):
            violating = [t for t in tuples if u.violated_by(t)]
            witness = any(
                (t & u.body_mask) == u.body_mask and t & u.head_mask
                for t in tuples
            )
            if violating:
                detail = f"{len(violating)} tuple(s) violate the implication"
            elif query.require_guarantees and not witness:
                detail = "guarantee clause has no witness tuple"
            else:
                detail = "holds on every tuple, witness present"
            reports.append(
                ExpressionReport(
                    expression=str(u),
                    satisfied=not violating
                    and (witness or not query.require_guarantees),
                    detail=detail,
                )
            )
        for e in sorted(query.existentials):
            sat = e.holds_on(tuples)
            reports.append(
                ExpressionReport(
                    expression=str(e),
                    satisfied=sat,
                    detail="witness tuple present" if sat else "no witness tuple",
                )
            )
        return reports

    def _check(self, query: QhornQuery) -> None:
        check_width(query, self.vocabulary)


class ExampleFactory:
    """Turns Boolean membership questions into concrete example objects."""

    def __init__(
        self,
        vocabulary: Vocabulary,
        database: NestedRelation | None = None,
        key_prefix: str = "example",
    ) -> None:
        self.vocabulary = vocabulary
        self.database = database
        self.key_prefix = key_prefix
        self._counter = 0
        self._row_index: dict[int, list[dict[str, Any]]] | None = None
        self._row_index_version: int | None = None

    def _next_key(self) -> str:
        self._counter += 1
        return f"{self.key_prefix}-{self._counter}"

    def refresh(self) -> None:
        """Drop the mask→rows index so the next question rebuilds it.

        Only needed after mutating database rows in place; plain
        ``insert``/``add_object`` calls bump the relation's ``version``
        counter and invalidate the index automatically.
        """
        self._row_index = None
        self._row_index_version = None

    def _database_index(self) -> dict[int, list[dict[str, Any]]]:
        version = getattr(self.database, "version", None)
        if self._row_index is None or version != self._row_index_version:
            index: dict[int, list[dict[str, Any]]] = {}
            for row in self.database.all_rows():
                mask = self.vocabulary.boolean_tuple(row)
                index.setdefault(mask, []).append(row)
            self._row_index = index
            self._row_index_version = version
        return self._row_index

    def synthesize(self, question: Question) -> NestedObject:
        """Assumption (i): build rows directly from the Boolean tuples."""
        rows = self.vocabulary.synthesize_object(question)
        return NestedObject(key=self._next_key(), rows=rows)

    def from_database(self, question: Question) -> NestedObject:
        """§5: prefer real database rows matching each Boolean tuple, so the
        user never sees artificial hybrids; falls back to synthesis for
        tuples the database cannot exhibit."""
        if self.database is None:
            return self.synthesize(question)
        row_index = self._database_index()
        rows: list[dict[str, Any]] = []
        for t in question.sorted_tuples():
            matches = row_index.get(t)
            if matches:
                rows.append(dict(matches[0]))
            else:
                rows.append(self.vocabulary.synthesize_row(t))
        return NestedObject(key=self._next_key(), rows=rows)
