"""The paper's running data domain: boxes of chocolates (§1, Fig. 1).

Provides the ``Chocolate``/``Box`` schemas, the three propositions of §2,
the intended query of the introduction ("a box with dark chocolates — some
sugar-free with nuts or filling"), and a seeded store generator producing
the "hundred boxes" the pedantic logician offers.
"""

from __future__ import annotations

import random

from repro.core.query import QhornQuery
from repro.data.propositions import BoolIs, Equals, Proposition, Vocabulary
from repro.data.relation import NestedRelation
from repro.data.schema import Attribute, FlatSchema, NestedSchema

__all__ = [
    "ORIGINS",
    "chocolate_schema",
    "box_schema",
    "paper_vocabulary",
    "storefront_vocabulary",
    "intro_query",
    "paper_figure1_relation",
    "random_store",
]

ORIGINS = ("Madagascar", "Belgium", "Germany", "Sweden", "Ecuador")


def chocolate_schema() -> FlatSchema:
    """``Chocolate(isDark, hasFilling, isSugarFree, hasNuts, origin)``."""
    return FlatSchema(
        name="Chocolate",
        attributes=(
            Attribute.boolean("isDark"),
            Attribute.boolean("hasFilling"),
            Attribute.boolean("isSugarFree"),
            Attribute.boolean("hasNuts"),
            Attribute.category("origin", ORIGINS, open_universe=True),
        ),
    )


def box_schema() -> NestedSchema:
    """``Box(name, Chocolate(...))`` with single-level nesting."""
    return NestedSchema(
        name="Box",
        embedded=chocolate_schema(),
        object_attributes=(Attribute.category("name"),),
    )


def paper_vocabulary() -> Vocabulary:
    """§2's three propositions: ``p1: isDark``, ``p2: hasFilling``,
    ``p3: origin = Madagascar``."""
    return Vocabulary(
        chocolate_schema(),
        [
            BoolIs("isDark", name="p1: isDark"),
            BoolIs("hasFilling", name="p2: hasFilling"),
            Equals("origin", "Madagascar", name="p3: origin = Madagascar"),
        ],
    )


def storefront_vocabulary() -> Vocabulary:
    """The intro scenario's atoms: dark, sugar-free, nuts, filling."""
    props: list[Proposition] = [
        BoolIs("isDark", name="isDark"),
        BoolIs("isSugarFree", name="isSugarFree"),
        BoolIs("hasNuts", name="hasNuts"),
        BoolIs("hasFilling", name="hasFilling"),
    ]
    return Vocabulary(chocolate_schema(), props)


def intro_query() -> QhornQuery:
    """"A box with dark chocolates — some sugar-free with nuts" over the
    storefront vocabulary: ``∀x1 ∃x1x2x3`` (every chocolate dark; some dark,
    sugar-free chocolate with nuts)."""
    return QhornQuery.build(
        4, universals=[((), 0)], existentials=[(0, 1, 2)]
    )


def paper_figure1_relation() -> NestedRelation:
    """The two boxes of Fig. 1 (Global Ground, Europe's Finest)."""
    relation = NestedRelation(box_schema())
    relation.add_object(
        "Global Ground",
        rows=[
            dict(origin="Madagascar", isSugarFree=True, isDark=True,
                 hasFilling=True, hasNuts=False),
            dict(origin="Belgium", isSugarFree=True, isDark=False,
                 hasFilling=False, hasNuts=True),
            dict(origin="Germany", isSugarFree=True, isDark=True,
                 hasFilling=True, hasNuts=True),
        ],
        attributes={"name": "Global Ground"},
    )
    relation.add_object(
        "Europe's Finest",
        rows=[
            dict(origin="Belgium", isSugarFree=True, isDark=True,
                 hasFilling=False, hasNuts=False),
            dict(origin="Belgium", isSugarFree=False, isDark=True,
                 hasFilling=False, hasNuts=True),
            dict(origin="Sweden", isSugarFree=False, isDark=True,
                 hasFilling=True, hasNuts=True),
        ],
        attributes={"name": "Europe's Finest"},
    )
    return relation


def random_store(
    n_boxes: int = 100,
    rng: random.Random | None = None,
    max_chocolates: int = 8,
) -> NestedRelation:
    """A seeded storefront: ``n_boxes`` random boxes of random chocolates."""
    rng = rng or random.Random(1304)  # arXiv number of the paper
    relation = NestedRelation(box_schema())
    for b in range(n_boxes):
        rows = []
        for _ in range(rng.randint(1, max_chocolates)):
            rows.append(
                dict(
                    isDark=rng.random() < 0.6,
                    hasFilling=rng.random() < 0.4,
                    isSugarFree=rng.random() < 0.3,
                    hasNuts=rng.random() < 0.5,
                    origin=rng.choice(ORIGINS),
                )
            )
        relation.add_object(
            f"box-{b:03d}", rows=rows, attributes={"name": f"box-{b:03d}"}
        )
    return relation


def _demo() -> None:  # pragma: no cover - convenience
    vocab = paper_vocabulary()
    relation = paper_figure1_relation()
    for obj in relation:
        print(obj.format())
        print("  boolean:", sorted(vocab.abstract_object(obj.rows)))


if __name__ == "__main__":  # pragma: no cover
    _demo()
