"""Propositions and vocabularies: the bridge between data and Booleans (§2).

Users specify a query's atoms as simple propositions over the embedded
relation's attributes (``p1: c.isDark``, ``p3: c.origin = Madagascar``).  A
:class:`Vocabulary` is an ordered list of propositions; it abstracts data
rows into Boolean tuples (Fig. 1) and — crucially for membership questions —
*concretizes* Boolean tuples back into data rows.

The paper's two assumptions about this bridge are implemented directly:

(i)  "it is relatively efficient to construct an actual data tuple from a
     Boolean tuple" — :meth:`Vocabulary.synthesize_row` solves each
     attribute's constraints independently against a finite candidate pool;

(ii) "the true/false assignment to one proposition does not interfere with
     the true/false assignments to other propositions" —
     :meth:`Vocabulary.check_interference` enumerates, per attribute, every
     truth assignment of the propositions on that attribute and reports the
     assignments with no witness value (e.g. ``origin = Madagascar`` and
     ``origin = Belgium`` both true).
"""

from __future__ import annotations

import abc
import operator
from dataclasses import dataclass
from itertools import product
from typing import Any, Callable, Iterable, Mapping, Sequence

from repro.core.tuples import Question
from repro.data.schema import Attribute, AttributeType, FlatSchema

__all__ = [
    "Proposition",
    "BoolIs",
    "Equals",
    "OneOf",
    "LessThan",
    "GreaterThan",
    "Between",
    "Vocabulary",
    "InterferenceError",
    "InterferenceReport",
]


class Proposition(abc.ABC):
    """A Boolean atom over a single attribute of the embedded relation."""

    def __init__(self, attribute: str, name: str | None = None) -> None:
        self.attribute = attribute
        self._name = name

    @property
    def name(self) -> str:
        return self._name or self.describe()

    @abc.abstractmethod
    def describe(self) -> str:
        """Human-readable form, e.g. ``origin = Madagascar``."""

    @abc.abstractmethod
    def evaluate(self, row: Mapping[str, Any]) -> bool:
        """Truth value of the proposition on a data row."""

    def evaluate_value(self, value: Any) -> bool:
        """Truth value on just this proposition's attribute value.

        A proposition reads exactly the one attribute it names, so this
        is :meth:`evaluate` without the row lookup — the positional fast
        path of :meth:`Vocabulary.mask_sets_projected`, where rows
        arrive as bare value tuples.  Subclasses override it with the
        direct comparison; this default keeps custom propositions
        correct unmodified.
        """
        return self.evaluate({self.attribute: value})

    @abc.abstractmethod
    def candidates(self, attribute: Attribute) -> list[Any]:
        """Attribute values that witness interesting truth assignments.

        The synthesizer unions the candidates of every proposition on an
        attribute and picks a value satisfying the requested assignment, so
        each proposition must contribute values making it true *and* values
        making it false (when such values exist).
        """

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<{type(self).__name__} {self.describe()}>"


class BoolIs(Proposition):
    """``row.attr is `value``` for a BOOLEAN attribute."""

    def __init__(self, attribute: str, value: bool = True, name: str | None = None):
        super().__init__(attribute, name)
        self.value = bool(value)

    def describe(self) -> str:
        return self.attribute if self.value else f"not {self.attribute}"

    def evaluate(self, row: Mapping[str, Any]) -> bool:
        return bool(row[self.attribute]) == self.value

    def evaluate_value(self, value: Any) -> bool:
        return bool(value) == self.value

    def candidates(self, attribute: Attribute) -> list[Any]:
        return [True, False]


class Equals(Proposition):
    """``row.attr == constant``."""

    def __init__(self, attribute: str, constant: Any, name: str | None = None):
        super().__init__(attribute, name)
        self.constant = constant

    def describe(self) -> str:
        return f"{self.attribute} = {self.constant!r}"

    def evaluate(self, row: Mapping[str, Any]) -> bool:
        return row[self.attribute] == self.constant

    def evaluate_value(self, value: Any) -> bool:
        return value == self.constant

    def candidates(self, attribute: Attribute) -> list[Any]:
        out = [self.constant]
        out.extend(attribute.universe)
        if attribute.type is AttributeType.CATEGORY and attribute.open_universe:
            out.append("≠" + str(self.constant))  # a fresh non-member
        if attribute.type in (AttributeType.INTEGER, AttributeType.FLOAT):
            out.append(self.constant + 1)
        return out


class OneOf(Proposition):
    """``row.attr ∈ constants``."""

    def __init__(
        self, attribute: str, constants: Iterable[Any], name: str | None = None
    ):
        super().__init__(attribute, name)
        self.constants = frozenset(constants)
        if not self.constants:
            raise ValueError("OneOf needs at least one constant")

    def describe(self) -> str:
        vals = ", ".join(repr(c) for c in sorted(self.constants, key=str))
        return f"{self.attribute} in {{{vals}}}"

    def evaluate(self, row: Mapping[str, Any]) -> bool:
        return row[self.attribute] in self.constants

    def evaluate_value(self, value: Any) -> bool:
        return value in self.constants

    def candidates(self, attribute: Attribute) -> list[Any]:
        out = sorted(self.constants, key=str)
        out.extend(attribute.universe)
        if attribute.type is AttributeType.CATEGORY and attribute.open_universe:
            out.append("∉" + str(sorted(self.constants, key=str)[0]))
        return out


class LessThan(Proposition):
    """``row.attr < constant`` for numeric attributes."""

    def __init__(self, attribute: str, constant: float, name: str | None = None):
        super().__init__(attribute, name)
        self.constant = constant

    def describe(self) -> str:
        return f"{self.attribute} < {self.constant}"

    def evaluate(self, row: Mapping[str, Any]) -> bool:
        return row[self.attribute] < self.constant

    def evaluate_value(self, value: Any) -> bool:
        return value < self.constant

    def candidates(self, attribute: Attribute) -> list[Any]:
        delta = 1 if attribute.type is AttributeType.INTEGER else 0.5
        return [self.constant - delta, self.constant, self.constant + delta]


class GreaterThan(Proposition):
    """``row.attr > constant`` for numeric attributes."""

    def __init__(self, attribute: str, constant: float, name: str | None = None):
        super().__init__(attribute, name)
        self.constant = constant

    def describe(self) -> str:
        return f"{self.attribute} > {self.constant}"

    def evaluate(self, row: Mapping[str, Any]) -> bool:
        return row[self.attribute] > self.constant

    def evaluate_value(self, value: Any) -> bool:
        return value > self.constant

    def candidates(self, attribute: Attribute) -> list[Any]:
        delta = 1 if attribute.type is AttributeType.INTEGER else 0.5
        return [self.constant - delta, self.constant, self.constant + delta]


class Between(Proposition):
    """``lo <= row.attr <= hi`` for numeric attributes."""

    def __init__(
        self, attribute: str, lo: float, hi: float, name: str | None = None
    ):
        if lo > hi:
            raise ValueError("Between needs lo <= hi")
        super().__init__(attribute, name)
        self.lo, self.hi = lo, hi

    def describe(self) -> str:
        return f"{self.lo} <= {self.attribute} <= {self.hi}"

    def evaluate(self, row: Mapping[str, Any]) -> bool:
        return self.lo <= row[self.attribute] <= self.hi

    def evaluate_value(self, value: Any) -> bool:
        return self.lo <= value <= self.hi

    def candidates(self, attribute: Attribute) -> list[Any]:
        delta = 1 if attribute.type is AttributeType.INTEGER else 0.5
        mid = (self.lo + self.hi) / 2
        if attribute.type is AttributeType.INTEGER:
            mid = int(mid)
        return [self.lo - delta, self.lo, mid, self.hi, self.hi + delta]


@dataclass(frozen=True)
class InterferenceReport:
    """One unrealizable truth assignment among same-attribute propositions."""

    attribute: str
    propositions: tuple[str, ...]
    assignment: tuple[bool, ...]

    def describe(self) -> str:
        parts = ", ".join(
            f"{p}={'T' if v else 'F'}"
            for p, v in zip(self.propositions, self.assignment)
        )
        return f"no value of {self.attribute!r} realizes: {parts}"


class InterferenceError(ValueError):
    """Raised when a vocabulary violates the independence assumption (ii)."""

    def __init__(self, reports: Sequence[InterferenceReport]) -> None:
        self.reports = list(reports)
        super().__init__(
            "; ".join(r.describe() for r in self.reports[:5])
            + (f" (+{len(self.reports) - 5} more)" if len(self.reports) > 5 else "")
        )


class _SingleValueTuple:
    """``itemgetter`` with one key wraps the value in a 1-tuple, so
    single-attribute projections stay tuples on the wire (and picklable,
    unlike a closure)."""

    __slots__ = ("attribute",)

    def __init__(self, attribute: str) -> None:
        self.attribute = attribute

    def __call__(self, row: Mapping[str, Any]) -> tuple:
        return (row[self.attribute],)

    def __reduce__(self):
        return (_SingleValueTuple, (self.attribute,))


class Vocabulary:
    """An ordered proposition list over a flat schema.

    Proposition ``i`` corresponds to Boolean variable ``x_{i+1}`` throughout
    the library.  Construction verifies the paper's independence assumption
    unless ``check=False``.
    """

    def __init__(
        self,
        schema: FlatSchema,
        propositions: Sequence[Proposition],
        check: bool = True,
    ) -> None:
        if not propositions:
            raise ValueError("a vocabulary needs at least one proposition")
        self.schema = schema
        self.propositions = tuple(propositions)
        for p in self.propositions:
            schema.attribute(p.attribute)  # raises on unknown attribute
        self._by_attribute: dict[str, list[tuple[int, Proposition]]] = {}
        for i, p in enumerate(self.propositions):
            self._by_attribute.setdefault(p.attribute, []).append((i, p))
        # Hoisted (bit, evaluator) pairs for the hot abstraction path.
        self._evaluators = tuple(
            (1 << i, p.evaluate) for i, p in enumerate(self.propositions)
        )
        # Attributes the propositions actually read: rows agreeing on
        # these values must abstract to the same mask, which is what the
        # bulk fast path (:meth:`mask_sets`) memoizes on.
        self._key_attributes = tuple(
            sorted({p.attribute for p in self.propositions})
        )
        # itemgetter extracts the memo key at C speed; with a single
        # attribute it returns the bare value, which is an equally good
        # dict key.  Empty vocabularies have no attributes to project.
        self._key_getter: Callable[[Mapping[str, Any]], Any] | None = (
            operator.itemgetter(*self._key_attributes)
            if self._key_attributes
            else None
        )
        # Positional (bit, tuple_index, value_predicate) triples for
        # abstracting projected value tuples without rebuilding rows
        # (:meth:`mask_sets_projected`).
        position = {a: i for i, a in enumerate(self._key_attributes)}
        self._value_evaluators = tuple(
            (1 << i, position[p.attribute], p.evaluate_value)
            for i, p in enumerate(self.propositions)
        )
        # The wire projector always yields tuples (even for one
        # attribute), so projected rows stay distinguishable from the
        # Mapping fallback rows in :meth:`project_rows` payloads.
        if len(self._key_attributes) > 1:
            self._row_projector: Callable[
                [Mapping[str, Any]], tuple
            ] | None = operator.itemgetter(*self._key_attributes)
        elif self._key_attributes:
            self._row_projector = _SingleValueTuple(self._key_attributes[0])
        else:
            self._row_projector = None
        if check:
            reports = self.check_interference()
            if reports:
                raise InterferenceError(reports)

    @property
    def n(self) -> int:
        return len(self.propositions)

    def names(self) -> list[str]:
        return [p.name for p in self.propositions]

    # ------------------------------------------------------------------
    # Data -> Boolean (Fig. 1)
    # ------------------------------------------------------------------
    def boolean_tuple(self, row: Mapping[str, Any]) -> int:
        """Abstract one data row into a Boolean tuple bitmask."""
        mask = 0
        for bit, evaluate in self._evaluators:
            if evaluate(row):
                mask |= bit
        return mask

    def boolean_tuples(self, rows: Iterable[Mapping[str, Any]]) -> list[int]:
        """Abstract rows into bitmasks, preserving order and multiplicity."""
        evaluators = self._evaluators
        out: list[int] = []
        for row in rows:
            mask = 0
            for bit, evaluate in evaluators:
                if evaluate(row):
                    mask |= bit
            out.append(mask)
        return out

    def abstract_object(self, rows: Iterable[Mapping[str, Any]]) -> frozenset[int]:
        """Abstract an object's rows into its set of Boolean tuples."""
        return frozenset(self.boolean_tuples(rows))

    def mask_sets(
        self, objects_rows: Iterable[Iterable[Mapping[str, Any]]]
    ) -> list[frozenset[int]]:
        """Bulk abstraction: one mask set per object, in object order.

        The per-row reference path (:meth:`boolean_tuple`) re-evaluates
        every proposition on every row.  Across a whole relation, rows
        repeat heavily — propositions only read the attributes they name,
        so any two rows agreeing on those values share a mask.  This fast
        path memoizes masks per distinct projection of a row onto the
        proposition-referenced attributes, turning the dominant build
        cost of every bitmask backend (and the worker-side raw-shard
        build) into one dict lookup per repeated row.

        The memo lives for one call, so it covers an entire build without
        growing unboundedly across relation versions.  Rows with
        unhashable attribute values fall back to direct evaluation.
        Answers are exactly those of ``frozenset(boolean_tuples(rows))``
        per object.
        """
        evaluators = self._evaluators
        key_of = self._key_getter
        memo: dict[Any, int] = {}
        memo_get = memo.get
        out: list[frozenset[int]] = []
        for rows in objects_rows:
            masks: set[int] = set()
            for row in rows:
                if key_of is not None:
                    try:
                        key = key_of(row)
                        mask = memo_get(key, -1)
                        if mask < 0:
                            mask = 0
                            for bit, evaluate in evaluators:
                                if evaluate(row):
                                    mask |= bit
                            memo[key] = mask
                        masks.add(mask)
                        continue
                    except (TypeError, KeyError):  # unhashable / partial row
                        pass
                mask = 0
                for bit, evaluate in evaluators:
                    if evaluate(row):
                        mask |= bit
                masks.add(mask)
            out.append(frozenset(masks))
        return out

    def project_rows(
        self, rows: Iterable[Mapping[str, Any]]
    ) -> list[tuple | Mapping[str, Any]]:
        """Rows in the wire form of the raw-ingest path (DESIGN.md §2d).

        Propositions only read ``_key_attributes``, so a shard worker can
        abstract a row from just those values: each row projects to one
        value tuple, typically a fraction of the full row's pickle cost.
        Rows missing a key attribute ship as plain dict copies instead —
        :meth:`mask_sets_projected` tells the two apart by type, and
        evaluates either exactly like :meth:`mask_sets` would have
        coordinator-side.
        """
        project = self._row_projector
        if project is None:
            return [dict(row) for row in rows]
        rows = rows if isinstance(rows, (list, tuple)) else list(rows)
        try:
            # The hot path is one C-level pass; the build ships hundreds
            # of thousands of rows, so per-row python overhead matters.
            return list(map(project, rows))
        except (TypeError, KeyError):  # partial / odd rows: go row-wise
            out: list[tuple | Mapping[str, Any]] = []
            for row in rows:
                try:
                    out.append(project(row))
                except (TypeError, KeyError):
                    out.append(dict(row))
            return out

    def mask_sets_projected(
        self, projected_objects: Iterable[Iterable[tuple | Mapping[str, Any]]]
    ) -> list[frozenset[int]]:
        """:meth:`mask_sets` over :meth:`project_rows` output — the
        worker side of raw shard ingest.

        Value tuples are themselves the memo keys (no re-projection); a
        memo miss runs the positional value evaluators straight off the
        tuple (``Proposition.evaluate_value``), never rebuilding a row
        dict.  Answers are exactly ``mask_sets`` of the original rows.
        """
        evaluators = self._evaluators
        value_evaluators = self._value_evaluators
        key_attributes = self._key_attributes
        memo: dict[Any, int] = {}
        memo_get = memo.get
        out: list[frozenset[int]] = []
        for rows in projected_objects:
            masks: set[int] = set()
            for row in rows:
                if type(row) is tuple:
                    try:
                        mask = memo_get(row, -1)
                        if mask < 0:
                            mask = 0
                            for bit, pos, predicate in value_evaluators:
                                if predicate(row[pos]):
                                    mask |= bit
                            memo[row] = mask
                        masks.add(mask)
                        continue
                    except TypeError:  # unhashable projected value
                        row = dict(zip(key_attributes, row))
                # Mapping row (wire fallback, or rebuilt above): evaluate
                # directly, exactly like the mask_sets fallback.
                mask = 0
                for bit, evaluate in evaluators:
                    if evaluate(row):
                        mask |= bit
                masks.add(mask)
            out.append(frozenset(masks))
        return out

    # ------------------------------------------------------------------
    # Boolean -> Data (assumption (i))
    # ------------------------------------------------------------------
    def _attribute_candidates(self, attribute: Attribute) -> list[Any]:
        values: list[Any] = []
        for _, p in self._by_attribute.get(attribute.name, []):
            for v in p.candidates(attribute):
                if attribute.type.validate(v) and v not in values:
                    values.append(v)
        if not values:
            values = list(attribute.universe) or self._default_pool(attribute)
        return values

    @staticmethod
    def _default_pool(attribute: Attribute) -> list[Any]:
        if attribute.type is AttributeType.BOOLEAN:
            return [True, False]
        if attribute.type is AttributeType.INTEGER:
            return [0]
        if attribute.type is AttributeType.FLOAT:
            return [0.0]
        return ["⊥"]  # an arbitrary category value

    def _witness(
        self, attribute: Attribute, wanted: dict[int, bool]
    ) -> Any | None:
        """A value of ``attribute`` realizing the requested truth values of
        the propositions on it, or ``None`` if the assignment interferes."""
        props = self._by_attribute.get(attribute.name, [])
        for value in self._attribute_candidates(attribute):
            row = {attribute.name: value}
            if all(
                p.evaluate(row) == wanted[i] for i, p in props if i in wanted
            ):
                return value
        return None

    def synthesize_row(self, mask: int) -> dict[str, Any]:
        """Construct a data row whose Boolean abstraction equals ``mask``.

        Solves each attribute independently (propositions constrain exactly
        one attribute), which is complete because the vocabulary passed the
        interference check.
        """
        wanted = {
            i: bool(mask & (1 << i)) for i in range(len(self.propositions))
        }
        row: dict[str, Any] = {}
        for attribute in self.schema.attributes:
            value = self._witness(attribute, wanted)
            if value is None:
                raise InterferenceError(
                    [
                        InterferenceReport(
                            attribute=attribute.name,
                            propositions=tuple(
                                p.name
                                for _, p in self._by_attribute[attribute.name]
                            ),
                            assignment=tuple(
                                wanted[i]
                                for i, _ in self._by_attribute[attribute.name]
                            ),
                        )
                    ]
                )
            row[attribute.name] = value
        return row

    def synthesize_object(self, question: Question) -> list[dict[str, Any]]:
        """One data row per Boolean tuple of a membership question."""
        if question.n != self.n:
            raise ValueError(
                f"question over {question.n} variables, vocabulary has {self.n}"
            )
        return [self.synthesize_row(t) for t in question.sorted_tuples()]

    # ------------------------------------------------------------------
    # Assumption (ii)
    # ------------------------------------------------------------------
    def check_interference(self) -> list[InterferenceReport]:
        """Find all same-attribute truth assignments with no witness value."""
        reports: list[InterferenceReport] = []
        for attr_name, props in self._by_attribute.items():
            attribute = self.schema.attribute(attr_name)
            indices = [i for i, _ in props]
            for assignment in product([True, False], repeat=len(indices)):
                wanted = dict(zip(indices, assignment))
                if self._witness(attribute, wanted) is None:
                    reports.append(
                        InterferenceReport(
                            attribute=attr_name,
                            propositions=tuple(p.name for _, p in props),
                            assignment=assignment,
                        )
                    )
        return reports

    # ------------------------------------------------------------------
    # Presentation
    # ------------------------------------------------------------------
    def legend(self) -> str:
        """``x1: isDark`` … — how Boolean variables map to propositions."""
        return "\n".join(
            f"x{i + 1}: {p.name}" for i, p in enumerate(self.propositions)
        )

    def render_question(self, question: Question) -> str:
        """Show a question as synthesized data rows (what the user sees)."""
        rows = self.synthesize_object(question)
        cols = self.schema.attribute_names
        widths = {
            c: max(len(c), *(len(str(r[c])) for r in rows)) if rows else len(c)
            for c in cols
        }
        lines = ["  ".join(c.ljust(widths[c]) for c in cols)]
        for r in rows:
            lines.append("  ".join(str(r[c]).ljust(widths[c]) for c in cols))
        return "\n".join(lines)
