"""Generic synthetic data generation for arbitrary nested schemas.

The chocolate store (``repro.data.chocolate``) is the paper's running
domain; this module generalizes it: declare value distributions per
attribute and draw seeded nested relations of any shape — the workload
side of the benchmark harness and a reusable library feature.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Any, Callable, Mapping

from repro.data.relation import NestedRelation
from repro.data.schema import Attribute, AttributeType, NestedSchema

__all__ = [
    "ValueSampler",
    "bernoulli",
    "uniform_int",
    "uniform_float",
    "categorical",
    "RelationGenerator",
]

ValueSampler = Callable[[random.Random], Any]


def bernoulli(p: float = 0.5) -> ValueSampler:
    """True with probability ``p``."""
    if not 0.0 <= p <= 1.0:
        raise ValueError("p must be a probability")
    return lambda rng: rng.random() < p


def uniform_int(lo: int, hi: int) -> ValueSampler:
    """Uniform integer in ``[lo, hi]``."""
    if lo > hi:
        raise ValueError("lo must be <= hi")
    return lambda rng: rng.randint(lo, hi)


def uniform_float(lo: float, hi: float) -> ValueSampler:
    """Uniform float in ``[lo, hi]``."""
    if lo > hi:
        raise ValueError("lo must be <= hi")
    return lambda rng: rng.uniform(lo, hi)


def categorical(
    weights: Mapping[str, float] | None = None, values: tuple = ()
) -> ValueSampler:
    """Weighted categorical draw (uniform over ``values`` if no weights)."""
    if weights:
        choices = list(weights)
        w = [weights[c] for c in choices]
        return lambda rng: rng.choices(choices, weights=w, k=1)[0]
    if not values:
        raise ValueError("need weights or values")
    pool = list(values)
    return lambda rng: rng.choice(pool)


def _default_sampler(attribute: Attribute) -> ValueSampler:
    if attribute.type is AttributeType.BOOLEAN:
        return bernoulli(0.5)
    if attribute.type is AttributeType.INTEGER:
        return uniform_int(0, 9)
    if attribute.type is AttributeType.FLOAT:
        return uniform_float(0.0, 1.0)
    if attribute.universe:
        return categorical(values=attribute.universe)
    return lambda rng: f"v{rng.randint(0, 4)}"


@dataclass
class RelationGenerator:
    """Draws seeded :class:`NestedRelation` instances from a schema.

    Samplers default per attribute type and can be overridden per column::

        gen = RelationGenerator(
            box_schema(),
            samplers={"isDark": bernoulli(0.8)},
            rows_per_object=(1, 6),
        )
        relation = gen.generate(n_objects=50, rng=random.Random(7))
    """

    schema: NestedSchema
    samplers: dict[str, ValueSampler] = field(default_factory=dict)
    rows_per_object: tuple[int, int] = (1, 8)
    key_prefix: str = "obj"

    def __post_init__(self) -> None:
        lo, hi = self.rows_per_object
        if lo < 0 or lo > hi:
            raise ValueError("rows_per_object must be (lo, hi) with lo <= hi")
        known = {
            a.name for a in self.schema.embedded.attributes
        } | {a.name for a in self.schema.object_attributes}
        unknown = set(self.samplers) - known
        if unknown:
            raise ValueError(f"samplers for unknown attributes {sorted(unknown)}")

    def _sampler(self, attribute: Attribute) -> ValueSampler:
        return self.samplers.get(attribute.name) or _default_sampler(attribute)

    def generate(
        self, n_objects: int, rng: random.Random
    ) -> NestedRelation:
        relation = NestedRelation(self.schema)
        lo, hi = self.rows_per_object
        for i in range(n_objects):
            rows = []
            for _ in range(rng.randint(lo, hi)):
                rows.append(
                    {
                        a.name: self._sampler(a)(rng)
                        for a in self.schema.embedded.attributes
                    }
                )
            attrs = {
                a.name: self._sampler(a)(rng)
                for a in self.schema.object_attributes
            }
            relation.add_object(
                f"{self.key_prefix}-{i:04d}", rows=rows, attributes=attrs
            )
        return relation
