"""Backend plugin API v2: the registry behind ``--backend`` (DESIGN.md §2i).

PR 3 wired every evaluation backend into a module-level ``BACKENDS`` dict
at import time, so landing a backend meant editing
``repro.data.backends``.  This module replaces that dict with a
:class:`BackendRegistry` — the ``TARGET_GENERATORS`` registry idiom —
so backends register *by name*, carry machine-readable capability flags,
and can live out of tree entirely:

* ``@REGISTRY.register("mine", supports_sql=True)`` — in-process
  registration (the built-ins, test doubles, ``examples/custom_backend.py``);
* ``repro.backends`` entry points — installed third-party packages are
  discovered lazily and imported only when first constructed;
* ``REPRO_BACKENDS=pkg.mod:Class,name=pkg.mod:Class,...`` — ad-hoc
  plugins without packaging; bare ``pkg.mod`` imports a module that
  self-registers, ``pkg.mod:Class`` registers the class under its own
  ``name`` attribute, and ``name=pkg.mod:Class`` registers lazily under
  an explicit name.

Capability flags (:class:`BackendCapabilities`) are what the CLI derives
its per-subcommand ``--backend`` choices from — ``supports_oracle``
marks backends that can answer membership questions for ``learn``/
``verify``, ``supports_parallel`` marks the worker-pool layout behind
``--parallel``, ``supports_sql`` and ``max_width`` describe the dialect
and packed-kernel constraints — instead of hard-coding name literals per
subcommand.

The PR 3 surface keeps working: ``repro.data.backends.BACKENDS`` is a
mapping view over this registry (mutation routes through
:meth:`BackendRegistry.register` with a :class:`DeprecationWarning`) and
``create_backend(name, ...)`` is still the construction seam.
"""

from __future__ import annotations

import difflib
import os
from dataclasses import dataclass, replace
from typing import Any, Callable, Iterator, MutableMapping

__all__ = [
    "REGISTRY",
    "BackendCapabilities",
    "BackendLoadError",
    "BackendRegistry",
    "coerce_option",
    "parse_backend_opts",
]

#: Entry-point group scanned for installed third-party backends.
ENTRY_POINT_GROUP = "repro.backends"

#: Environment variable naming ad-hoc plugin modules/classes.
ENV_VAR = "REPRO_BACKENDS"


class BackendLoadError(ValueError):
    """A discovered backend failed to import/resolve when first used."""


@dataclass(frozen=True)
class BackendCapabilities:
    """Machine-readable facts the CLI and tooling key decisions on.

    supports_parallel:
        The backend partitions the relation and can evaluate through a
        worker pool (``--parallel`` implies it for ``demo``).
    supports_sql:
        Evaluation compiles to SQL over a :class:`~repro.data.sql.SqlDialect`
        (the backend accepts dialect-flavoured options such as ``uri=``).
    supports_oracle:
        ``learn``/``verify`` can build a ground-truth membership oracle
        for this backend choice (in-process compiled evaluation or the
        one-round-trip SQL path).
    max_width:
        Upper bound on the vocabulary width ``n`` the backend can
        evaluate (``None`` = unbounded; the packed numpy kernel is 64).
    """

    supports_parallel: bool = False
    supports_sql: bool = False
    supports_oracle: bool = False
    max_width: int | None = None


@dataclass
class _Entry:
    """One registered (or discoverable-but-unloaded) backend."""

    name: str
    cls: type | None  # loaded class, None while lazy
    loader: Callable[[], type] | None  # resolves the class on demand
    capabilities: BackendCapabilities
    caps_declared: bool  # were flags given at registration time?
    source: str  # "builtin" | "entry-point" | "env" | "runtime"


def _load_spec(spec: str) -> type:
    """Resolve ``pkg.mod:Class`` to the class object."""
    module_name, sep, attr = spec.partition(":")
    if not sep or not module_name or not attr:
        raise BackendLoadError(
            f"backend spec {spec!r} is not of the form 'pkg.mod:Class'"
        )
    import importlib

    try:
        module = importlib.import_module(module_name)
    except ImportError as error:
        raise BackendLoadError(
            f"backend module {module_name!r} failed to import: {error}"
        ) from error
    try:
        return getattr(module, attr)
    except AttributeError as error:
        raise BackendLoadError(
            f"backend module {module_name!r} has no attribute {attr!r}"
        ) from error


def _class_capabilities(cls: type) -> BackendCapabilities:
    """Capability flags declared on the class itself (plugin idiom)."""
    declared = getattr(cls, "capabilities", None)
    if isinstance(declared, BackendCapabilities):
        return declared
    if isinstance(declared, dict):
        return BackendCapabilities(**declared)
    return BackendCapabilities()


class BackendRegistry:
    """Name → backend-class registry with lazy plugin discovery.

    Loaded entries hold the class; lazy entries (entry points, env-var
    specs) hold a loader that resolves on first :meth:`get`.  Discovery
    runs on every name listing but caches per environment value, so
    flipping ``REPRO_BACKENDS`` between calls is honoured (the test and
    multi-config story) without re-scanning entry points each time.
    """

    def __init__(self, *, discover: bool = True) -> None:
        self._entries: dict[str, _Entry] = {}
        self._discover_enabled = discover
        self._scanned_entry_points = False
        self._env_seen: str | None = None

    # ------------------------------------------------------------------
    # Registration
    # ------------------------------------------------------------------
    def register(
        self,
        name: str,
        cls: type | None = None,
        *,
        replace_existing: bool = False,
        supports_parallel: bool = False,
        supports_sql: bool = False,
        supports_oracle: bool = False,
        max_width: int | None = None,
    ):
        """Register a backend class, directly or as a decorator.

        ``@registry.register("mine", supports_sql=True)`` on the class,
        or ``registry.register("mine", MyBackend)``.  Duplicate names
        raise ``ValueError`` unless ``replace_existing=True`` (latest
        wins, the plugin-override story).
        """
        caps = BackendCapabilities(
            supports_parallel=supports_parallel,
            supports_sql=supports_sql,
            supports_oracle=supports_oracle,
            max_width=max_width,
        )
        caps_declared = caps != BackendCapabilities()

        def add(target: type) -> type:
            if name in self._entries and not replace_existing:
                raise ValueError(
                    f"backend {name!r} is already registered "
                    f"({self._entries[name].source}); pass "
                    f"replace_existing=True to override"
                )
            entry_caps = caps if caps_declared else _class_capabilities(target)
            self._entries[name] = _Entry(
                name=name,
                cls=target,
                loader=None,
                capabilities=entry_caps,
                caps_declared=True,
                source="runtime",
            )
            return target

        if cls is not None:
            return add(cls)
        return add

    def register_lazy(
        self,
        name: str,
        spec: str | Callable[[], type],
        *,
        source: str = "runtime",
        capabilities: BackendCapabilities | None = None,
        replace_existing: bool = False,
    ) -> None:
        """Register a backend that loads on first use.

        ``spec`` is either a ``pkg.mod:Class`` string or a zero-argument
        loader returning the class.  Capability flags may be declared up
        front; otherwise they are read off the loaded class (its
        ``capabilities`` attribute) the first time it resolves.
        """
        if name in self._entries and not replace_existing:
            raise ValueError(f"backend {name!r} is already registered")
        loader = spec if callable(spec) else (lambda: _load_spec(spec))
        self._entries[name] = _Entry(
            name=name,
            cls=None,
            loader=loader,
            capabilities=capabilities or BackendCapabilities(),
            caps_declared=capabilities is not None,
            source=source,
        )

    def unregister(self, name: str) -> None:
        """Remove a registration (primarily for tests and plugin teardown)."""
        self._entries.pop(name, None)

    # ------------------------------------------------------------------
    # Discovery
    # ------------------------------------------------------------------
    def _discover(self) -> None:
        if not self._discover_enabled:
            return
        self._discover_entry_points()
        self._discover_env()

    def _discover_entry_points(self) -> None:
        if self._scanned_entry_points:
            return
        self._scanned_entry_points = True
        try:
            from importlib.metadata import entry_points

            points = entry_points(group=ENTRY_POINT_GROUP)
        except Exception:  # pragma: no cover - metadata backend quirks
            return
        for point in points:
            if point.name in self._entries:
                continue  # built-ins and runtime registrations win
            self._entries[point.name] = _Entry(
                name=point.name,
                cls=None,
                loader=point.load,
                capabilities=BackendCapabilities(),
                caps_declared=False,
                source="entry-point",
            )

    def _discover_env(self) -> None:
        raw = os.environ.get(ENV_VAR, "")
        if raw == self._env_seen:
            return
        self._env_seen = raw
        for item in (piece.strip() for piece in raw.split(",")):
            if not item:
                continue
            name, sep, spec = item.partition("=")
            if sep and name and ":" in spec:
                # name=pkg.mod:Class — lazy under the explicit name.
                if name not in self._entries:
                    self.register_lazy(name, spec, source="env")
            elif ":" in item:
                # pkg.mod:Class — load now, the class names itself.
                cls = _load_spec(item)
                cls_name = getattr(cls, "name", None)
                if not isinstance(cls_name, str) or not cls_name:
                    raise BackendLoadError(
                        f"{ENV_VAR} entry {item!r}: class declares no "
                        f"'name' attribute to register under"
                    )
                if cls_name not in self._entries:
                    self._entries[cls_name] = _Entry(
                        name=cls_name,
                        cls=cls,
                        loader=None,
                        capabilities=_class_capabilities(cls),
                        caps_declared=True,
                        source="env",
                    )
            else:
                # Bare pkg.mod — importing it self-registers (decorator).
                import importlib

                try:
                    importlib.import_module(item)
                except ImportError as error:
                    raise BackendLoadError(
                        f"{ENV_VAR} module {item!r} failed to import: {error}"
                    ) from error

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------
    def names(self) -> list[str]:
        """Sorted names: registered *and* discoverable-but-unloaded."""
        self._discover()
        return sorted(self._entries)

    def __contains__(self, name: object) -> bool:
        self._discover()
        return name in self._entries

    def get(self, name: str) -> type:
        """The backend class, resolving a lazy entry on first use."""
        self._discover()
        entry = self._entries.get(name)
        if entry is None:
            raise ValueError(self.unknown_backend_message(name))
        if entry.cls is None:
            try:
                entry.cls = entry.loader()
            except BackendLoadError:
                raise
            except Exception as error:
                raise BackendLoadError(
                    f"backend {name!r} ({entry.source}) failed to load: "
                    f"{error}"
                ) from error
            if not entry.caps_declared:
                entry.capabilities = _class_capabilities(entry.cls)
                entry.caps_declared = True
        return entry.cls

    def capabilities(self, name: str) -> BackendCapabilities:
        """Declared capability flags, without forcing a lazy load."""
        self._discover()
        entry = self._entries.get(name)
        if entry is None:
            raise ValueError(self.unknown_backend_message(name))
        return entry.capabilities

    def names_with(self, **flags: Any) -> list[str]:
        """Sorted names whose capabilities match every given flag.

        ``registry.names_with(supports_oracle=True)`` is how the CLI
        derives the ``learn``/``verify`` choices from the registry.
        """
        return [
            name
            for name in self.names()
            if all(
                getattr(self._entries[name].capabilities, key) == value
                for key, value in flags.items()
            )
        ]

    def is_loaded(self, name: str) -> bool:
        """Has the backend class been resolved yet? (lazy introspection)"""
        entry = self._entries.get(name)
        return entry is not None and entry.cls is not None

    def unknown_backend_message(self, name: str) -> str:
        """The 'unknown backend' error: sorted names + did-you-mean."""
        names = self.names()
        suggestion = difflib.get_close_matches(str(name), names, n=1)
        hint = f" (did you mean {suggestion[0]!r}?)" if suggestion else ""
        return (
            f"unknown evaluation backend {name!r}{hint}; "
            f"choices: {', '.join(names)}"
        )

    def create(self, name: str, *args: Any, **options: Any):
        """Construct a registered backend by name (the v2 seam)."""
        cls = self.get(name)
        caps = self._entries[name].capabilities
        if caps.max_width is not None and args:
            vocabulary = args[1] if len(args) > 1 else options.get("vocabulary")
            width = getattr(vocabulary, "n", None)
            if width is not None and width > caps.max_width:
                raise ValueError(
                    f"backend {name!r} supports at most "
                    f"n={caps.max_width} propositions, vocabulary has {width}"
                )
        return cls(*args, **options)


#: The process-wide registry the package-level BACKENDS view and
#: ``create_backend`` delegate to.
REGISTRY = BackendRegistry()


class BackendsView(MutableMapping):
    """PR 3 compatibility: ``BACKENDS`` as a live view of the registry.

    Reads (``BACKENDS[name]``, ``name in BACKENDS``, iteration,
    ``sorted(BACKENDS)``) delegate to the registry, so plugins appear
    without editing this package.  Writes were the PR 3 registration
    path; they still work but route through
    :meth:`BackendRegistry.register` with a :class:`DeprecationWarning`.
    """

    def __init__(self, registry: BackendRegistry) -> None:
        self._registry = registry

    def __getitem__(self, name: str) -> type:
        try:
            return self._registry.get(name)
        except ValueError as error:
            raise KeyError(str(error)) from None

    def __setitem__(self, name: str, cls: type) -> None:
        import warnings

        warnings.warn(
            "BACKENDS[name] = cls is deprecated; use "
            "repro.data.backends.REGISTRY.register(name, cls, ...) "
            "(DESIGN.md §2i)",
            DeprecationWarning,
            stacklevel=2,
        )
        self._registry.register(name, cls, replace_existing=True)

    def __delitem__(self, name: str) -> None:
        self._registry.unregister(name)

    def __iter__(self) -> Iterator[str]:
        return iter(self._registry.names())

    def __len__(self) -> int:
        return len(self._registry.names())

    def __contains__(self, name: object) -> bool:
        return name in self._registry

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"BackendsView({self._registry.names()})"


# ----------------------------------------------------------------------
# The uniform --backend-opt pipeline
# ----------------------------------------------------------------------
def coerce_option(value: str) -> Any:
    """Typed coercion for one ``--backend-opt`` value string.

    ``true/false/yes/no/on/off`` → bool, ``none/null`` → None, int- and
    float-looking strings → numbers, everything else stays a string
    (URIs, dialect names, file paths).
    """
    lowered = value.lower()
    if lowered in ("true", "yes", "on"):
        return True
    if lowered in ("false", "no", "off"):
        return False
    if lowered in ("none", "null"):
        return None
    try:
        return int(value)
    except ValueError:
        pass
    try:
        return float(value)
    except ValueError:
        pass
    return value


def parse_backend_opts(pairs: Any) -> dict[str, Any]:
    """``["uri=file:x.db", "pool_size=2"]`` → ``{"uri": ..., "pool_size": 2}``.

    The one options pipeline shared by the CLI subcommands, the pytest
    ``--backend-opt`` flag and anything else that accepts repeatable
    ``key=value`` strings; values go through :func:`coerce_option`.
    """
    options: dict[str, Any] = {}
    for item in pairs or ():
        key, sep, value = str(item).partition("=")
        if not sep or not key:
            raise ValueError(
                f"backend option {item!r} is not of the form key=value"
            )
        options[key] = coerce_option(value)
    return options


def _merge_capabilities(
    caps: BackendCapabilities, **overrides: Any
) -> BackendCapabilities:  # pragma: no cover - helper for plugins
    return replace(caps, **overrides)
