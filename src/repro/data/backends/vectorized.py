"""Vectorized numpy evaluation kernel: the inverted index as packed bits.

:func:`~repro.data.index.evaluate_inverted` spends its time in two
pure-python loops: the mask scan (``(m & body) == body`` per distinct
mask) and the big-int bitset unions (``violators |= bits``), which at
``W`` objects re-copy ``W/30``-digit integers per distinct mask.
:class:`PackedBitIndex` stores the same inverted index as two numpy
arrays so both loops become SIMD-width array operations:

* ``masks`` — the ``D`` distinct Boolean-tuple bitmasks as a ``uint64``
  vector (hence the ``n <= 64`` width limit of this backend);
* ``bits`` — the ``D`` object-position bitsets as a ``D x ceil(W/64)``
  matrix of little-endian ``uint64`` words: bit ``i`` of an object
  bitset lives at ``bits[row, i >> 6]``, bit position ``i & 63``.

The kernel contract is exactly :func:`evaluate_inverted`'s: a universal
Horn expression selects rows with a broadcast compare
(``(masks & body) == body``), splits them on the head, and unions each
side with one ``np.bitwise_or.reduce`` down the rows; existential
conjunctions union one selection; AND/OR/NOT happen word-wise on the
answer vector.  ``np.bitwise_or.reduce`` over an empty selection yields
the zero vector — the same identity as the python kernel's empty union —
so answers are bit-identical by construction (and pinned against every
other backend by ``tests/properties/test_prop_backends.py``).

Both the python kernel and the plain reduce are memory-bandwidth bound —
every query re-reads all ``D`` bitset rows — so a straight translation
cannot beat CPython's big-int loops by much.  The packed index therefore
precomputes, lazily on first evaluation and only when the table fits
:data:`ZETA_TABLE_BUDGET`, the *superset-union (zeta) tables* that make
warm evaluation touch one row per quantifier instead of all ``D``:

* ``Z[mask]``   — union of the bitsets of all data masks ``m ⊇ mask``;
* ``V_h[mask]`` — the same union restricted to ``m`` with head bit ``h``
  clear (built per head bit on first use).

With them a universal ``(body, head=1<<h)`` evaluates as
``answers &= ~V_h[body]`` plus (guarantees) ``answers &= Z[body | head]``
and an existential ``mask`` as ``answers &= Z[mask]`` — a constant
number of ``O(words)`` operations per expression.  Compiled queries with
a multi-bit head mask (impossible via ``QhornQuery.compile``, possible
by hand) and indexes whose ``2^n`` table would blow the budget fall back
to the reduce path above; both paths produce bit-identical answers.

:class:`NumpyBackend` wraps the packed index behind the
:class:`~repro.data.backends.base.EvaluationBackend` seam
(``--backend numpy``); :class:`~repro.data.backends.sharded.
ShardedBitmaskBackend` reuses :class:`PackedBitIndex` per shard via its
``kernel="numpy"`` option, including worker-side in the process pool.
E26 (``benchmarks/test_e26_numpy_kernel.py``) gates the speedup over the
pure-python kernel at 100k objects.
"""

from __future__ import annotations

from typing import Iterable, Mapping, Sequence

import numpy as np

from repro.core import tuples as bt
from repro.core.query import CompiledQuery, QhornQuery
from repro.data.backends.base import check_width
from repro.data.propositions import Vocabulary
from repro.data.relation import NestedObject, NestedRelation

__all__ = ["MAX_PACKED_VARIABLES", "NumpyBackend", "PackedBitIndex"]

#: ``masks`` is a ``uint64`` vector, so a packed index can only hold
#: Boolean tuples over at most 64 propositions.  Far beyond the paper's
#: regime (and the 2^n mask-space blowup bites long before 64), but the
#: limit is checked, not assumed.
MAX_PACKED_VARIABLES = 64

#: Per-table byte cap for the zeta (superset-union) fast path: a table
#: holds ``2^n_used * words`` uint64 words, where ``n_used`` counts only
#: the proposition bits actually set in the data.  Under the cap, warm
#: evaluation is one table row per quantifier; over it, the kernel keeps
#: the ``O(D * words)`` reduce path.  At most ``n_used + 1`` tables ever
#: exist (``Z`` plus one ``V_h`` per head bit queried).
ZETA_TABLE_BUDGET = 1 << 24

_ONE = np.uint64(1)
_WORD_SHIFT = np.uint64(6)
_BIT_MASK = np.uint64(63)


class PackedBitIndex:
    """One inverted ``mask -> object-position bitset`` index, packed.

    Attributes
    ----------
    count:
        Number of objects (the bitset width ``W``).
    words:
        Words per bitset row: ``ceil(count / 64)``.
    masks:
        ``uint64[D]`` — the distinct Boolean-tuple bitmasks.
    bits:
        ``uint64[D, words]`` — row ``r`` is the object-position bitset
        of ``masks[r]``, little-endian words, LSB-first within a word
        (bit ``i`` at ``bits[r, i >> 6] >> (i & 63) & 1``).
    all_bits:
        ``uint64[words]`` — the full-relation bitset ``(1 << count) - 1``
        in the same layout; the trailing partial word is masked so NOT
        can never leak phantom objects.
    """

    __slots__ = (
        "count",
        "words",
        "masks",
        "bits",
        "all_bits",
        "_zeta_bits",
        "_zeta",
        "_zeta_heads",
    )

    def __init__(
        self, count: int, masks: np.ndarray, bits: np.ndarray
    ) -> None:
        self.count = count
        self.words = (count + 63) >> 6
        self.masks = masks
        self.bits = bits
        all_bits = np.full(self.words, ~np.uint64(0), dtype=np.uint64)
        if self.words and count & 63:
            all_bits[-1] = (_ONE << np.uint64(count & 63)) - _ONE
        self.all_bits = all_bits
        # Zeta tables cover the mask space the data actually inhabits:
        # a query bit above _zeta_bits cannot occur in any data mask, so
        # its selections are empty unions (handled without a table).
        self._zeta_bits = (
            int(masks.max()).bit_length() if len(masks) else 0
        )
        if (1 << self._zeta_bits) * self.words * 8 > ZETA_TABLE_BUDGET:
            self._zeta_bits = -1  # over budget: reduce path only
        self._zeta: np.ndarray | None = None
        self._zeta_heads: dict[int, np.ndarray] = {}

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def from_mask_sets(
        cls, mask_sets: Sequence[Iterable[int]]
    ) -> "PackedBitIndex":
        """Pack per-object mask sets (object order = bit position).

        One pass collects ``(mask row, object position)`` pairs, then a
        single scatter-OR (``np.bitwise_or.at``) sets every bit — no
        python-level big-int accumulation anywhere in the build.
        """
        count = len(mask_sets)
        mask_rows: dict[int, int] = {}
        rows: list[int] = []
        positions: list[int] = []
        for position, masks in enumerate(mask_sets):
            for m in masks:
                row = mask_rows.setdefault(m, len(mask_rows))
                rows.append(row)
                positions.append(position)
        words = (count + 63) >> 6
        bits = np.zeros((len(mask_rows), words), dtype=np.uint64)
        if rows:
            pos = np.asarray(positions, dtype=np.uint64)
            np.bitwise_or.at(
                bits,
                (
                    np.asarray(rows, dtype=np.intp),
                    (pos >> _WORD_SHIFT).astype(np.intp),
                ),
                _ONE << (pos & _BIT_MASK),
            )
        masks_arr = np.fromiter(
            mask_rows, dtype=np.uint64, count=len(mask_rows)
        )
        return cls(count, masks_arr, bits)

    @classmethod
    def from_inverted(
        cls, inverted: Mapping[int, int], count: int
    ) -> "PackedBitIndex":
        """Pack an already-built big-int inverted index (shard payloads)."""
        words = (count + 63) >> 6
        row_bytes = words * 8
        buffer = bytearray(len(inverted) * row_bytes)
        masks_arr = np.empty(len(inverted), dtype=np.uint64)
        for row, (m, bitset) in enumerate(inverted.items()):
            masks_arr[row] = m
            start = row * row_bytes
            buffer[start : start + row_bytes] = bitset.to_bytes(
                row_bytes, "little"
            )
        bits = (
            np.frombuffer(bytes(buffer), dtype="<u8")
            .reshape(len(inverted), words)
            .astype(np.uint64, copy=False)
        )
        return cls(count, masks_arr, bits)

    # ------------------------------------------------------------------
    # Zeta (superset-union) tables
    # ------------------------------------------------------------------
    def _superset_union(
        self, rows: np.ndarray, row_bits: np.ndarray
    ) -> np.ndarray:
        """``table[mask] = OR of row_bits[r] for rows[r] ⊇ mask`` over the
        full ``2^_zeta_bits`` mask space (the standard OR-zeta transform:
        one butterfly pass per bit)."""
        size = 1 << self._zeta_bits
        table = np.zeros((size, self.words), dtype=np.uint64)
        table[rows.astype(np.intp)] = row_bits
        index = np.arange(size)
        for j in range(self._zeta_bits):
            bit = 1 << j
            lo = index[(index & bit) == 0]
            table[lo] |= table[lo + bit]
        return table

    def _zeta_table(self) -> np.ndarray:
        if self._zeta is None:
            self._zeta = self._superset_union(self.masks, self.bits)
        return self._zeta

    def _zeta_head_table(self, h: int) -> np.ndarray:
        """``V_h``: superset unions over data masks with head bit ``h``
        clear — the violator side of a universal ``(body, 1 << h)``."""
        table = self._zeta_heads.get(h)
        if table is None:
            keep = (self.masks >> np.uint64(h)) & _ONE == 0
            table = self._superset_union(self.masks[keep], self.bits[keep])
            self._zeta_heads[h] = table
        return table

    def _evaluate_words_zeta(self, compiled: CompiledQuery) -> np.ndarray | None:
        """Constant-rows-per-quantifier evaluation off the zeta tables;
        ``None`` defers to the reduce path (multi-bit head mask)."""
        zeta = self._zeta_table()
        size = 1 << self._zeta_bits
        negatives: list[np.ndarray] = []  # violator unions, to be OR-ed
        positives: list[np.ndarray] = []  # witness unions, to be AND-ed
        unwitnessed = False
        for body, head in compiled.universal_masks:
            if head & (head - 1):
                return None  # hand-built multi-bit head: reduce path
            h = head.bit_length() - 1
            if body < size:
                if head and h < self._zeta_bits:
                    negatives.append(self._zeta_head_table(h)[body])
                else:
                    # No data mask can witness this head: every row that
                    # matches the body violates the implication.
                    negatives.append(zeta[body])
            # else: nothing matches the body — no violators.
            if compiled.require_guarantees:
                witness = body | head
                if head and witness < size:
                    positives.append(zeta[witness])
                else:
                    unwitnessed = True
        for mask in compiled.existential_masks:
            if mask < size:
                positives.append(zeta[mask])
            else:
                unwitnessed = True
        if unwitnessed:  # an empty union zeroes the whole answer
            return np.zeros(self.words, dtype=np.uint64)
        answers = self.all_bits.copy()
        for union in positives:
            answers &= union
        if negatives:
            violators = negatives[0]
            for union in negatives[1:]:
                violators = violators | union
            answers &= ~violators
        return answers

    # ------------------------------------------------------------------
    # Evaluation
    # ------------------------------------------------------------------
    def evaluate_words(self, compiled: CompiledQuery) -> np.ndarray:
        """The answer bitset as a ``uint64[words]`` vector.

        Same algebra as :func:`~repro.data.index.evaluate_inverted`:
        warm evaluation reads one zeta-table row per quantifier when the
        tables fit the budget, else the mask scan runs as broadcast
        compares with per-expression unions as row reductions.
        """
        if self._zeta_bits >= 0:
            answers = self._evaluate_words_zeta(compiled)
            if answers is not None:
                return answers
        masks = self.masks
        bits = self.bits
        answers = self.all_bits.copy()
        for body, head in compiled.universal_masks:
            selected = (masks & np.uint64(body)) == np.uint64(body)
            witnessed = (masks & np.uint64(head)) != 0
            violators = np.bitwise_or.reduce(
                bits[selected & ~witnessed], axis=0
            )
            answers &= ~violators
            if compiled.require_guarantees:
                answers &= np.bitwise_or.reduce(
                    bits[selected & witnessed], axis=0
                )
            if not answers.any():
                return answers
        for mask in compiled.existential_masks:
            answers &= np.bitwise_or.reduce(
                bits[(masks & np.uint64(mask)) == np.uint64(mask)], axis=0
            )
            if not answers.any():
                return answers
        return answers

    def matching_bits(self, compiled: CompiledQuery) -> int:
        """The answer bitset as one arbitrary-width int (the seam's
        currency) — little-endian words concatenate losslessly."""
        return int.from_bytes(
            self.evaluate_words(compiled).astype("<u8", copy=False).tobytes(),
            "little",
        )

    def labels(self, compiled: CompiledQuery) -> list[bool]:
        """Per-position answer labels, extracted without the int detour:
        one ``np.unpackbits`` over the answer words."""
        if not self.count:
            return []
        answer_bytes = (
            self.evaluate_words(compiled).astype("<u8", copy=False)
            .view(np.uint8)
        )
        return (
            np.unpackbits(answer_bytes, count=self.count, bitorder="little")
            .astype(bool)
            .tolist()
        )

    @property
    def distinct_masks(self) -> int:
        return len(self.masks)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"PackedBitIndex({self.count} objects x {self.distinct_masks} "
            f"masks, {self.words} words/row)"
        )


class NumpyBackend:
    """The packed-bit index behind the evaluation seam.

    Same lazy-build / version-refresh / foreign-object contract as
    :class:`~repro.data.backends.bitmask.BitmaskBackend`; the only
    additional constraint is ``vocabulary.n <= 64`` (checked eagerly).
    """

    name = "numpy"

    def __init__(
        self,
        relation: NestedRelation,
        vocabulary: Vocabulary,
        auto_refresh: bool = True,
    ) -> None:
        if vocabulary.n > MAX_PACKED_VARIABLES:
            raise ValueError(
                f"the numpy backend packs masks into uint64 and supports "
                f"at most n={MAX_PACKED_VARIABLES} propositions, "
                f"vocabulary has {vocabulary.n}"
            )
        self.relation = relation
        self.vocabulary = vocabulary
        self.auto_refresh = auto_refresh
        self._packed: PackedBitIndex | None = None
        self._built_version: int | None = None

    # ------------------------------------------------------------------
    # Construction / freshness
    # ------------------------------------------------------------------
    def _build(self) -> None:
        objects = self.relation.objects
        mask_sets = self.vocabulary.mask_sets(obj.rows for obj in objects)
        self._objects = objects
        self._positions = {o.key: i for i, o in enumerate(objects)}
        self._packed = PackedBitIndex.from_mask_sets(mask_sets)
        self._built_version = getattr(self.relation, "version", None)

    @property
    def is_stale(self) -> bool:
        return (
            self._packed is None
            or getattr(self.relation, "version", None) != self._built_version
        )

    def refresh(self, force: bool = False) -> bool:
        if force or self.is_stale:
            self._build()
            return True
        return False

    def _ensure_fresh(self) -> None:
        if self._packed is None or (self.auto_refresh and self.is_stale):
            self._build()

    # ------------------------------------------------------------------
    # Evaluation
    # ------------------------------------------------------------------
    def _compiled(self, query: QhornQuery | CompiledQuery) -> CompiledQuery:
        check_width(query, self.vocabulary)
        return query.compile() if isinstance(query, QhornQuery) else query

    def matching_bits(self, query: QhornQuery | CompiledQuery) -> int:
        self._ensure_fresh()
        return self._packed.matching_bits(self._compiled(query))

    def execute(self, query: QhornQuery | CompiledQuery) -> list[NestedObject]:
        bits = self.matching_bits(query)
        return [self._objects[i] for i in bt.variables_of(bits)]

    def matches_many(
        self,
        query: QhornQuery | CompiledQuery,
        objects: Iterable[NestedObject] | None = None,
    ) -> list[bool]:
        self._ensure_fresh()
        compiled = self._compiled(query)
        if objects is None:
            return self._packed.labels(compiled)
        bits = self._packed.matching_bits(compiled)
        labels: list[bool] = []
        for obj in objects:
            position = self._positions.get(obj.key)
            if position is not None and self._objects[position] is obj:
                labels.append(bool(bits >> position & 1))
            else:
                labels.append(
                    compiled.evaluate(self.vocabulary.boolean_tuples(obj.rows))
                )
        return labels

    def describe(self) -> str:
        if self._packed is None:
            return "numpy: packed index not built yet"
        packed = self._packed
        return (
            f"numpy: {packed.count} objects packed into "
            f"{packed.distinct_masks} x {packed.words} uint64 words, "
            f"{packed.distinct_masks} distinct masks"
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"NumpyBackend({len(self.relation)} objects)"
