"""Pluggable evaluation backends behind one seam (DESIGN.md §2c, §2i).

Five built-in implementations of the :class:`EvaluationBackend` contract:

* ``bitmask`` — one :class:`~repro.data.index.RelationIndex` over the
  whole relation (the default; fastest for small/medium relations);
* ``sharded`` — the relation partitioned into object-position blocks so
  bitset widths stay bounded; builds and full-relation labeling scale
  linearly, shards optionally evaluate in parallel (with a per-shard
  ``kernel=`` choice and a parallel-ingest ``ingest="raw"`` mode in
  pool execution);
* ``numpy`` — the inverted index packed into numpy arrays so the kernel
  runs as SIMD-width array operations (DESIGN.md §2g; registered only
  when numpy imports);
* ``sql`` — the relation loaded into in-memory SQLite, each query
  compiled to SQL once and answered in one round trip;
* ``dbapi`` — the relation loaded into *any* DB-API database through a
  :class:`~repro.data.sql.SqlDialect` and evaluated through a bounded
  connection pool (file-backed SQLite URIs today, client/server drivers
  via ``connect=`` tomorrow; DESIGN.md §2i).

Backends register on the plugin :data:`REGISTRY` (DESIGN.md §2i) with
capability flags the CLI derives its choices from; third-party backends
join via ``repro.backends`` entry points or the ``REPRO_BACKENDS``
environment variable without editing this package.  ``BACKENDS`` remains
as a live mapping view for PR 3 era callers.

``create_backend(name, relation, vocabulary, **options)`` is the single
construction seam the engine, CLI and experiments go through.
"""

from __future__ import annotations

from repro.data.backends.base import EvaluationBackend, check_width
from repro.data.backends.bitmask import BitmaskBackend
from repro.data.backends.dbapi import DbApiBackend, PooledConnectionSource
from repro.data.backends.registry import (
    REGISTRY,
    BackendCapabilities,
    BackendLoadError,
    BackendRegistry,
    BackendsView,
    coerce_option,
    parse_backend_opts,
)
from repro.data.backends.sharded import (
    DEFAULT_SHARD_SIZE,
    ShardedBitmaskBackend,
)
from repro.data.backends.sqlexec import SqlBackend
from repro.data.propositions import Vocabulary
from repro.data.relation import NestedRelation

__all__ = [
    "BACKENDS",
    "REGISTRY",
    "BackendCapabilities",
    "BackendLoadError",
    "BackendRegistry",
    "BitmaskBackend",
    "DbApiBackend",
    "DEFAULT_SHARD_SIZE",
    "EvaluationBackend",
    "PooledConnectionSource",
    "ShardedBitmaskBackend",
    "SqlBackend",
    "check_width",
    "coerce_option",
    "create_backend",
    "parse_backend_opts",
]

# ----------------------------------------------------------------------
# Built-in registrations (capability flags drive the CLI choices).
# ----------------------------------------------------------------------
REGISTRY.register(
    BitmaskBackend.name, BitmaskBackend, supports_oracle=True
)
REGISTRY.register(
    ShardedBitmaskBackend.name, ShardedBitmaskBackend, supports_parallel=True
)
REGISTRY.register(
    SqlBackend.name, SqlBackend, supports_sql=True, supports_oracle=True
)
REGISTRY.register(
    DbApiBackend.name, DbApiBackend, supports_sql=True, supports_oracle=True
)

try:  # numpy is an optional accelerator, not a hard dependency
    from repro.data.backends.vectorized import NumpyBackend
except ImportError:  # pragma: no cover - exercised only without numpy
    NumpyBackend = None  # type: ignore[assignment, misc]
else:
    REGISTRY.register(NumpyBackend.name, NumpyBackend, max_width=64)
    __all__.append("NumpyBackend")

#: PR 3 compatibility: a live name → class mapping view over the
#: registry.  Reads see every registered *and* discoverable backend;
#: ``BACKENDS[name] = cls`` still registers (with a DeprecationWarning)
#: but new code should use ``REGISTRY.register(name, ...)``.
BACKENDS: BackendsView = BackendsView(REGISTRY)


def create_backend(
    name: str,
    relation: NestedRelation,
    vocabulary: Vocabulary,
    **options,
) -> EvaluationBackend:
    """Construct a registered backend by name.

    ``options`` are forwarded to the backend constructor (``shard_size``,
    ``executor``, ``processes`` and ``pool`` for ``sharded``, ``uri``,
    ``dialect`` and ``pool_size`` for ``dbapi``, ``auto_refresh`` for
    all).  ``processes`` makes the sharded backend own a persistent
    :class:`~repro.parallel.ShardWorkerPool` (DESIGN.md §2d); callers
    should ``close()`` the backend (or use it as a context manager) when
    done, though an :mod:`atexit` guard covers forgotten pools.

    Unknown names raise ``ValueError`` listing every registered and
    discoverable-but-unloaded backend, sorted, with a did-you-mean
    suggestion for near misses.
    """
    return REGISTRY.create(name, relation, vocabulary, **options)
