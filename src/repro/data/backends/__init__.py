"""Pluggable evaluation backends behind one seam (DESIGN.md §2c).

Four implementations of the :class:`EvaluationBackend` contract:

* ``bitmask`` — one :class:`~repro.data.index.RelationIndex` over the
  whole relation (the default; fastest for small/medium relations);
* ``sharded`` — the relation partitioned into object-position blocks so
  bitset widths stay bounded; builds and full-relation labeling scale
  linearly, shards optionally evaluate in parallel (with a per-shard
  ``kernel=`` choice and a parallel-ingest ``ingest="raw"`` mode in
  pool execution);
* ``numpy`` — the inverted index packed into numpy arrays so the kernel
  runs as SIMD-width array operations (DESIGN.md §2g; registered only
  when numpy imports);
* ``sql`` — the relation loaded into SQLite, each query compiled to SQL
  once and answered in one round trip (the database does the work).

``create_backend(name, relation, vocabulary, **options)`` is the single
construction seam the engine, CLI and experiments go through.
"""

from __future__ import annotations

from repro.data.backends.base import EvaluationBackend, check_width
from repro.data.backends.bitmask import BitmaskBackend
from repro.data.backends.sharded import (
    DEFAULT_SHARD_SIZE,
    ShardedBitmaskBackend,
)
from repro.data.backends.sqlexec import SqlBackend
from repro.data.propositions import Vocabulary
from repro.data.relation import NestedRelation

__all__ = [
    "BACKENDS",
    "BitmaskBackend",
    "DEFAULT_SHARD_SIZE",
    "EvaluationBackend",
    "ShardedBitmaskBackend",
    "SqlBackend",
    "check_width",
    "create_backend",
]

#: Registry: backend name → class.  Every future backend (async,
#: multi-process, remote) registers here and inherits the engine's
#: ``backend=`` dispatch, the demo CLI choices and the
#: ``backend_name``-parametrized unit tests for free; the differential
#: property suite and E23 construct backends with per-backend options,
#: so they list names explicitly and need a one-line addition.
BACKENDS: dict[str, type] = {
    BitmaskBackend.name: BitmaskBackend,
    ShardedBitmaskBackend.name: ShardedBitmaskBackend,
    SqlBackend.name: SqlBackend,
}

try:  # numpy is an optional accelerator, not a hard dependency
    from repro.data.backends.vectorized import NumpyBackend
except ImportError:  # pragma: no cover - exercised only without numpy
    NumpyBackend = None  # type: ignore[assignment, misc]
else:
    BACKENDS[NumpyBackend.name] = NumpyBackend
    __all__.append("NumpyBackend")


def create_backend(
    name: str,
    relation: NestedRelation,
    vocabulary: Vocabulary,
    **options,
) -> EvaluationBackend:
    """Construct a registered backend by name.

    ``options`` are forwarded to the backend constructor (``shard_size``,
    ``executor``, ``processes`` and ``pool`` for ``sharded``,
    ``auto_refresh`` for all).  ``processes`` makes the sharded backend
    own a persistent :class:`~repro.parallel.ShardWorkerPool`
    (DESIGN.md §2d); callers should ``close()`` the backend (or use it
    as a context manager) when done, though an :mod:`atexit` guard
    covers forgotten pools.
    """
    try:
        cls = BACKENDS[name]
    except KeyError:
        raise ValueError(
            f"unknown evaluation backend {name!r}; "
            f"choices: {', '.join(sorted(BACKENDS))}"
        ) from None
    return cls(relation, vocabulary, **options)
