"""Sharded bitmask backend: object-position blocks with bounded bitsets.

The single :class:`~repro.data.index.RelationIndex` stores one inverted
``mask → object-position bitset`` map whose bitsets span the *whole*
relation.  Those arbitrary-width ints make the algebra elegant, but two
costs grow super-linearly with relation size ``W``:

* **build** — ``inverted[m] |= 1 << position`` re-copies an up-to-``W``-bit
  integer per (object, mask) pair, an ``O(W²)``-flavoured accumulation;
* **label extraction** — ``bits >> i & 1`` over all ``i`` costs ``O(W)``
  per shift, ``O(W²)`` for a full-relation labeling pass.

:class:`ShardedBitmaskBackend` partitions the relation into consecutive
*object-position blocks* of ``shard_size`` objects.  Each shard owns its
own inverted index with **shard-local positions**, so every bitset is
bounded to ``shard_size`` bits: builds and label extractions become
linear in relation size, and shards evaluate independently through a
per-shard kernel — the pure-python
:func:`~repro.data.index.evaluate_inverted` by default, or the packed
numpy kernel (:class:`~repro.data.backends.vectorized.PackedBitIndex`)
with ``kernel="numpy"``.

Three execution modes share that layout:

* **serial** (default) — shards evaluate in-process, one after another;
* **caller-owned executor** — the per-shard evaluations of one query run
  through ``executor.map``; the backend never owns the lifecycle;
* **owned worker pool** (``processes=N``, or an injected ``pool=``) —
  a persistent :class:`~repro.parallel.ShardWorkerPool` receives the
  shard state once and evaluates it in ``N`` processes; per query only
  the compiled form crosses the boundary and either bitsets or
  worker-extracted label lists come back (DESIGN.md §2d).  This is the
  mode that beats the GIL on the pure-python kernel.  Rebuilds (relation
  ``version`` bumps) re-ship automatically — the invalidation broadcast
  — and a pool crash raises
  :class:`~repro.parallel.WorkerCrashError` cleanly; the next evaluation
  builds a fresh owned pool.

In pool mode the *ingest* side is parallel too: by default
(``ingest="raw"``) the coordinator ships each shard's **raw rows** and
the workers run the vocabulary abstraction themselves
(:meth:`~repro.data.propositions.Vocabulary.mask_sets` worker-side), so
a ``processes=N`` build uses all cores instead of abstracting
single-core in the coordinator.  ``ingest="built"`` restores the old
behaviour — abstract locally, ship built payloads — which is the right
trade when rows are much wider than their inverted index (DESIGN.md
§2g discusses the tradeoff).

Shard boundaries are unobservable: answers are identical to the single
index on identical state (enforced by
``tests/properties/test_prop_backends.py`` and
``tests/properties/test_prop_parallel.py``), and ``matching_bits``
reassembles the global object-position bitset in relation order.  E23
(``benchmarks/test_e23_backend_scale.py``) charts the layout crossover;
E24 (``benchmarks/test_e24_parallel_scale.py``) charts speedup vs worker
count and the raw-vs-built build-phase split.
"""

from __future__ import annotations

from itertools import repeat
from typing import TYPE_CHECKING, Iterable, Sequence

from repro.core import tuples as bt
from repro.core.query import CompiledQuery, QhornQuery
from repro.data.backends.base import check_width
from repro.data.index import evaluate_inverted, labels_of
from repro.data.propositions import Vocabulary
from repro.data.relation import NestedObject, NestedRelation

if TYPE_CHECKING:  # pragma: no cover
    from concurrent.futures import Executor

    from repro.parallel import ShardWorkerPool

__all__ = ["ShardedBitmaskBackend", "Shard", "DEFAULT_SHARD_SIZE", "KERNELS"]

#: Default objects per shard: big enough that per-shard dict overhead is
#: amortized, small enough that every bitset stays a few machine words.
DEFAULT_SHARD_SIZE = 4096

#: Per-shard evaluation kernels: the pure-python bitset algebra, or the
#: packed numpy kernel (requires numpy and ``vocabulary.n <= 64``).
KERNELS = ("python", "numpy")

#: Shard-shipping modes for the worker pool: ship raw rows and abstract
#: worker-side (parallel ingest), or abstract in the coordinator and
#: ship the built inverted indexes.
INGEST_MODES = ("raw", "built")


class Shard:
    """One object-position block: a shard-local inverted index, plus an
    optional packed copy when the numpy kernel is selected."""

    __slots__ = ("offset", "count", "inverted", "all_bits", "packed")

    def __init__(
        self,
        offset: int,
        mask_sets: Sequence[Iterable[int]],
        kernel: str = "python",
    ) -> None:
        self.offset = offset
        self.count = len(mask_sets)
        inverted: dict[int, int] = {}
        for local, masks in enumerate(mask_sets):
            bit = 1 << local
            for m in masks:
                inverted[m] = inverted.get(m, 0) | bit
        self.inverted = inverted
        self.all_bits = (1 << self.count) - 1
        self.packed = None
        if kernel == "numpy":
            from repro.data.backends.vectorized import PackedBitIndex

            self.packed = PackedBitIndex.from_inverted(inverted, self.count)

    @classmethod
    def from_payload(
        cls,
        payload: tuple[int, int, dict[int, int], int],
        kernel: str = "python",
    ) -> "Shard":
        """Rebuild a shard from its wire payload (worker-side loading of
        a coordinator-built shard)."""
        shard = cls.__new__(cls)
        shard.offset, shard.count, shard.inverted, shard.all_bits = payload
        shard.packed = None
        if kernel == "numpy":
            from repro.data.backends.vectorized import PackedBitIndex

            shard.packed = PackedBitIndex.from_inverted(
                shard.inverted, shard.count
            )
        return shard

    def evaluate_bits(self, compiled: CompiledQuery) -> int:
        """Shard-local answer bitset through the selected kernel."""
        if self.packed is not None:
            return self.packed.matching_bits(compiled)
        return evaluate_inverted(compiled, self.inverted, self.all_bits)

    def evaluate_labels(self, compiled: CompiledQuery) -> list[bool]:
        """Shard-local answer labels (kernel + extraction in one call)."""
        if self.packed is not None:
            return self.packed.labels(compiled)
        return labels_of(
            evaluate_inverted(compiled, self.inverted, self.all_bits),
            self.count,
        )

    def __getstate__(self) -> tuple:
        # Executor/process transport: the packed copy is derived state —
        # rebuild it on the far side instead of pickling numpy arrays.
        return (self.offset, self.count, self.inverted, self.all_bits,
                self.packed is not None)

    def __setstate__(self, state: tuple) -> None:
        offset, count, inverted, all_bits, packed = state
        self.offset = offset
        self.count = count
        self.inverted = inverted
        self.all_bits = all_bits
        self.packed = None
        if packed:
            from repro.data.backends.vectorized import PackedBitIndex

            self.packed = PackedBitIndex.from_inverted(inverted, count)


def _shard_bits(compiled: CompiledQuery, shard: Shard) -> int:
    """Module-level kernel trampoline so ``executor.map`` works with
    process executors (bound methods don't pickle)."""
    return shard.evaluate_bits(compiled)


class ShardedBitmaskBackend:
    """The relation partitioned into independent bitmask shards.

    Parameters
    ----------
    relation, vocabulary:
        The evaluated pair.
    shard_size:
        Objects per shard (the bound on every bitset's width).
    kernel:
        Per-shard evaluation kernel: ``"python"`` (default, the big-int
        bitset algebra) or ``"numpy"`` (the packed-bit kernel of
        :mod:`repro.data.backends.vectorized`; requires numpy and
        ``vocabulary.n <= 64``).  Applies in every execution mode,
        including worker-side in the pool.
    executor:
        Optional :class:`concurrent.futures.Executor`; when given, the
        per-shard evaluations of one query run through ``executor.map``.
        The backend never owns the executor's lifecycle.
    processes:
        Optional worker-process count: the backend creates and **owns**
        a :class:`~repro.parallel.ShardWorkerPool` (``0`` = one worker
        per core), ships shard state on build/refresh, and closes the
        pool in :meth:`close` / the context manager / at interpreter
        exit.  Mutually exclusive with ``executor`` and ``pool``.
    pool:
        Optional caller-owned :class:`~repro.parallel.ShardWorkerPool`
        to evaluate through; several backends may share one pool (each
        load is token-tagged, and a backend re-ships automatically when
        another tenant's load displaced its state).  The backend never
        closes an injected pool.
    ingest:
        Shard-shipping mode for pool execution: ``"raw"`` (default)
        ships raw shard rows and abstracts worker-side — the parallel
        ingest path — while ``"built"`` abstracts in the coordinator and
        ships built payloads.  Only meaningful with ``processes``/
        ``pool``; passing it in other modes raises ``ValueError``.
    auto_refresh:
        Rebuild all shards on relation-version mismatch before every
        evaluation (same contract as :class:`RelationIndex`).
    """

    name = "sharded"

    def __init__(
        self,
        relation: NestedRelation,
        vocabulary: Vocabulary,
        shard_size: int = DEFAULT_SHARD_SIZE,
        kernel: str = "python",
        executor: "Executor | None" = None,
        processes: int | None = None,
        pool: "ShardWorkerPool | None" = None,
        ingest: str | None = None,
        auto_refresh: bool = True,
    ) -> None:
        if shard_size < 1:
            raise ValueError(f"shard_size must be positive, got {shard_size}")
        if kernel not in KERNELS:
            raise ValueError(
                f"unknown kernel {kernel!r}; choices: {', '.join(KERNELS)}"
            )
        if kernel == "numpy":
            # Validate eagerly: a missing numpy or an over-wide
            # vocabulary must fail at construction, not mid-evaluation
            # (possibly inside a worker).
            from repro.data.backends.vectorized import MAX_PACKED_VARIABLES

            if vocabulary.n > MAX_PACKED_VARIABLES:
                raise ValueError(
                    f"kernel='numpy' packs masks into uint64 and supports "
                    f"at most n={MAX_PACKED_VARIABLES} propositions, "
                    f"vocabulary has {vocabulary.n}"
                )
        given = [
            name
            for name, value in (
                ("executor", executor),
                ("processes", processes),
                ("pool", pool),
            )
            if value is not None
        ]
        if len(given) > 1:
            raise ValueError(
                f"at most one of executor/processes/pool may be given, "
                f"got {', '.join(given)}"
            )
        self.relation = relation
        self.vocabulary = vocabulary
        self.shard_size = shard_size
        self.kernel = kernel
        self.executor = executor
        self.processes = processes
        if processes is not None or pool is not None:
            from repro.parallel import PoolLease

            self._lease = PoolLease(pool=pool, processes=processes or 0)
        else:
            self._lease = None
        if ingest is not None:
            if ingest not in INGEST_MODES:
                raise ValueError(
                    f"unknown ingest mode {ingest!r}; "
                    f"choices: {', '.join(INGEST_MODES)}"
                )
            if self._lease is None:
                raise ValueError(
                    "ingest= applies only to worker-pool modes "
                    "(processes= or pool=)"
                )
        self.ingest = ingest if ingest is not None else (
            "raw" if self._lease is not None else None
        )
        self._shipped_token: int | None = None
        self._shipped_generation: int | None = None
        self.auto_refresh = auto_refresh
        self._built = False
        self._shards: list[Shard] | None = None
        self._spans: list[tuple[int, int]] = []
        self._built_version: int | None = None

    # ------------------------------------------------------------------
    # Construction / freshness
    # ------------------------------------------------------------------
    @property
    def _raw_ingest(self) -> bool:
        """Does the build phase ship raw rows for worker-side abstraction?"""
        return self._lease is not None and self.ingest == "raw"

    def _build(self) -> None:
        objects = self.relation.objects
        size = self.shard_size
        self._objects = objects
        self._positions = {o.key: i for i, o in enumerate(objects)}
        self._spans = [
            (offset, min(size, len(objects) - offset))
            for offset in range(0, len(objects), size)
        ]
        if self._raw_ingest:
            # Parallel ingest: abstraction happens worker-side when the
            # shards ship (first pool evaluation); nothing to build here
            # beyond the position map.
            self._shards = None
        else:
            # Bulk abstraction: one distinct-row memo across all shards.
            mask_sets = self.vocabulary.mask_sets(
                obj.rows for obj in objects
            )
            self._shards = [
                Shard(offset, mask_sets[offset : offset + size], self.kernel)
                for offset, _count in self._spans
            ]
        self._built = True
        self._built_version = getattr(self.relation, "version", None)
        # Worker-side state (if any) now describes a retired build; the
        # next pool evaluation re-ships (the invalidation broadcast).
        self._shipped_token = None

    @property
    def is_stale(self) -> bool:
        return (
            not self._built
            or getattr(self.relation, "version", None) != self._built_version
        )

    def refresh(self, force: bool = False) -> bool:
        if force or self.is_stale:
            self._build()
            return True
        return False

    def _ensure_fresh(self) -> None:
        if not self._built or (self.auto_refresh and self.is_stale):
            self._build()

    @property
    def shard_count(self) -> int:
        self._ensure_fresh()
        return len(self._spans)

    # ------------------------------------------------------------------
    # Worker-pool plumbing
    # ------------------------------------------------------------------
    @property
    def parallel(self) -> bool:
        """Is any parallel mode (executor or worker pool) configured?"""
        return self.executor is not None or self._lease is not None

    def _worker_pool(self) -> "ShardWorkerPool":
        """The active pool, (re)creating an owned one when necessary."""
        pool = self._lease.acquire()
        if self._shipped_generation != self._lease.generation:
            # A fresh pool (first use, or rebuilt after a crash) holds no
            # shard state yet.
            self._shipped_token = None
            self._shipped_generation = self._lease.generation
        return pool

    def _ship(self) -> int:
        """Broadcast this build's shard state to the pool workers —
        raw rows (workers abstract) or built payloads, per ``ingest``."""
        pool = self._worker_pool()
        if self._raw_ingest:
            # Rows cross the pipe projected onto the proposition-read
            # attributes (value tuples, not dicts): a fraction of the
            # pickle cost, and exactly what worker-side abstraction
            # needs (Vocabulary.mask_sets_projected).  Each shard ships
            # ONE flat projected row list plus per-object counts, so
            # projection is a single C-level pass per shard instead of
            # a python call per object.
            from itertools import chain

            project = self.vocabulary.project_rows
            payloads = []
            for offset, count in self._spans:
                objects = self._objects[offset : offset + count]
                payloads.append(
                    (
                        offset,
                        count,
                        [len(obj.rows) for obj in objects],
                        project(
                            chain.from_iterable(obj.rows for obj in objects)
                        ),
                    )
                )
            self._shipped_token = pool.build_shards(
                self.vocabulary, payloads, kernel=self.kernel
            )
        else:
            from repro.parallel import shard_payloads

            self._shipped_token = pool.load_shards(
                shard_payloads(self._shards), kernel=self.kernel
            )
        return self._shipped_token

    def _pool_evaluate(self, op: str, compiled: CompiledQuery) -> list:
        """One pool round trip with re-ship-and-retry on stale state.

        Stale answers happen when another backend sharing the pool
        shipped its own load since ours; re-shipping restores this
        backend's state and the retry answers from it.  A worker crash
        closes the pool — an owned pool is forgotten so the next
        evaluation starts a fresh one, and the error propagates either
        way.
        """
        from repro.parallel import StaleShardStateError, WorkerCrashError

        try:
            pool = self._worker_pool()
            token = (
                self._shipped_token
                if self._shipped_token is not None
                else self._ship()
            )
            evaluate = (
                pool.evaluate_bits if op == "bits" else pool.evaluate_labels
            )
            for retry in (False, True):
                try:
                    return evaluate(token, compiled)
                except StaleShardStateError:
                    if retry:
                        raise
                    token = self._ship()
            raise AssertionError("unreachable")  # pragma: no cover
        except WorkerCrashError:
            self._lease.reset_after_crash()
            raise

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def close(self) -> None:
        """Release the owned worker pool; safe to call twice (no-op).

        An injected ``pool=`` is caller-owned and stays open; the
        backend merely stops using it.
        """
        if self._lease is not None:
            self._lease.release()
        self._shipped_token = None

    def __enter__(self) -> "ShardedBitmaskBackend":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Evaluation
    # ------------------------------------------------------------------
    def _compiled(self, query: QhornQuery | CompiledQuery) -> CompiledQuery:
        check_width(query, self.vocabulary)
        return query.compile() if isinstance(query, QhornQuery) else query

    def _shard_answers(self, compiled: CompiledQuery) -> list[int]:
        """Per-shard answer bitsets (shard-local positions), shard order."""
        if self._lease is not None:
            if not self._spans:  # nothing to evaluate (and, in raw
                return []        # ingest, nothing was built locally)
            return [bits for _offset, bits in self._pool_evaluate("bits", compiled)]
        shards = self._shards
        if self.executor is not None and len(shards) > 1:
            return list(
                self.executor.map(_shard_bits, repeat(compiled), shards)
            )
        return [shard.evaluate_bits(compiled) for shard in shards]

    def matching_bits(self, query: QhornQuery | CompiledQuery) -> int:
        self._ensure_fresh()
        compiled = self._compiled(query)
        answers = 0
        for (offset, _count), bits in zip(
            self._spans, self._shard_answers(compiled)
        ):
            answers |= bits << offset
        return answers

    def execute(self, query: QhornQuery | CompiledQuery) -> list[NestedObject]:
        bits = self.matching_bits(query)
        return [self._objects[i] for i in bt.variables_of(bits)]

    def matches_many(
        self,
        query: QhornQuery | CompiledQuery,
        objects: Iterable[NestedObject] | None = None,
    ) -> list[bool]:
        self._ensure_fresh()
        compiled = self._compiled(query)
        if objects is None:
            if self._lease is not None and self._spans:
                # Full-relation labeling is the pool's best case: workers
                # run the kernel AND the label extraction; only compact
                # bool lists come back, reassembled in shard order.
                labels: list[bool] = []
                for _offset, shard_labels in self._pool_evaluate(
                    "labels", compiled
                ):
                    labels.extend(shard_labels)
                return labels
            answers = self._shard_answers(compiled)
            # Extract shard by shard so every bitset stays shard-width.
            labels = []
            for (_offset, count), bits in zip(self._spans, answers):
                labels.extend(labels_of(bits, count))
            return labels
        answers = self._shard_answers(compiled)
        size = self.shard_size
        labels = []
        for obj in objects:
            position = self._positions.get(obj.key)
            if position is not None and self._objects[position] is obj:
                shard_idx, local = divmod(position, size)
                labels.append(bool(answers[shard_idx] >> local & 1))
            else:
                labels.append(
                    compiled.evaluate(self.vocabulary.boolean_tuples(obj.rows))
                )
        return labels

    def describe(self) -> str:
        if not self._built:
            return "sharded: shards not built yet"
        if self._shards is not None:
            masks = sum(len(s.inverted) for s in self._shards)
            layout = f"{masks} inverted entries"
        else:
            layout = "raw ingest (abstraction runs worker-side)"
        kernel = f", {self.kernel} kernel" if self.kernel != "python" else ""
        pool = self._lease.pool if self._lease is not None else None
        if pool is not None and not pool.closed:
            mode = f", {pool.processes}-process pool"
        elif self._lease is not None and not self._lease.closed:
            mode = ", process pool (workers start on first evaluation)"
        elif self.executor is not None:
            mode = ", parallel"
        else:
            mode = ""
        return (
            f"sharded: {len(self._objects)} objects in "
            f"{len(self._spans)} shard(s) of ≤{self.shard_size}, "
            f"{layout}" + kernel + mode
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"ShardedBitmaskBackend({len(self.relation)} objects, "
            f"shard_size={self.shard_size})"
        )
