"""Sharded bitmask backend: object-position blocks with bounded bitsets.

The single :class:`~repro.data.index.RelationIndex` stores one inverted
``mask → object-position bitset`` map whose bitsets span the *whole*
relation.  Those arbitrary-width ints make the algebra elegant, but two
costs grow super-linearly with relation size ``W``:

* **build** — ``inverted[m] |= 1 << position`` re-copies an up-to-``W``-bit
  integer per (object, mask) pair, an ``O(W²)``-flavoured accumulation;
* **label extraction** — ``bits >> i & 1`` over all ``i`` costs ``O(W)``
  per shift, ``O(W²)`` for a full-relation labeling pass.

:class:`ShardedBitmaskBackend` partitions the relation into consecutive
*object-position blocks* of ``shard_size`` objects.  Each shard owns its
own inverted index with **shard-local positions**, so every bitset is
bounded to ``shard_size`` bits: builds and label extractions become
linear in relation size, and shards evaluate independently through the
same :func:`~repro.data.index.evaluate_inverted` kernel the single index
uses.

Three execution modes share that layout:

* **serial** (default) — shards evaluate in-process, one after another;
* **caller-owned executor** — the per-shard evaluations of one query run
  through ``executor.map``; the backend never owns the lifecycle;
* **owned worker pool** (``processes=N``, or an injected ``pool=``) —
  a persistent :class:`~repro.parallel.ShardWorkerPool` receives the
  built shard payloads once and evaluates them in ``N`` processes; per
  query only the compiled form crosses the boundary and either bitsets
  or worker-extracted label lists come back (DESIGN.md §2d).  This is
  the mode that beats the GIL on the pure-python kernel.  Rebuilds
  (relation ``version`` bumps) re-ship automatically — the invalidation
  broadcast — and a pool crash raises
  :class:`~repro.parallel.WorkerCrashError` cleanly; the next evaluation
  builds a fresh owned pool.

Shard boundaries are unobservable: answers are identical to the single
index on identical state (enforced by
``tests/properties/test_prop_backends.py`` and
``tests/properties/test_prop_parallel.py``), and ``matching_bits``
reassembles the global object-position bitset in relation order.  E23
(``benchmarks/test_e23_backend_scale.py``) charts the layout crossover;
E24 (``benchmarks/test_e24_parallel_scale.py``) charts speedup vs worker
count.
"""

from __future__ import annotations

from itertools import repeat
from typing import TYPE_CHECKING, Iterable

from repro.core import tuples as bt
from repro.core.query import CompiledQuery, QhornQuery
from repro.data.backends.base import check_width
from repro.data.index import evaluate_inverted
from repro.data.propositions import Vocabulary
from repro.data.relation import NestedObject, NestedRelation

if TYPE_CHECKING:  # pragma: no cover
    from concurrent.futures import Executor

    from repro.parallel import ShardWorkerPool

__all__ = ["ShardedBitmaskBackend", "DEFAULT_SHARD_SIZE"]

#: Default objects per shard: big enough that per-shard dict overhead is
#: amortized, small enough that every bitset stays a few machine words.
DEFAULT_SHARD_SIZE = 4096


class _Shard:
    """One object-position block: a shard-local inverted index."""

    __slots__ = ("offset", "count", "inverted", "all_bits")

    def __init__(self, offset: int, objects: list[NestedObject], vocabulary: Vocabulary) -> None:
        self.offset = offset
        self.count = len(objects)
        boolean_tuples = vocabulary.boolean_tuples
        inverted: dict[int, int] = {}
        for local, obj in enumerate(objects):
            bit = 1 << local
            for m in frozenset(boolean_tuples(obj.rows)):
                inverted[m] = inverted.get(m, 0) | bit
        self.inverted = inverted
        self.all_bits = (1 << self.count) - 1


class ShardedBitmaskBackend:
    """The relation partitioned into independent bitmask shards.

    Parameters
    ----------
    relation, vocabulary:
        The evaluated pair.
    shard_size:
        Objects per shard (the bound on every bitset's width).
    executor:
        Optional :class:`concurrent.futures.Executor`; when given, the
        per-shard evaluations of one query run through ``executor.map``.
        The backend never owns the executor's lifecycle.
    processes:
        Optional worker-process count: the backend creates and **owns**
        a :class:`~repro.parallel.ShardWorkerPool` (``0`` = one worker
        per core), ships shard state on build/refresh, and closes the
        pool in :meth:`close` / the context manager / at interpreter
        exit.  Mutually exclusive with ``executor`` and ``pool``.
    pool:
        Optional caller-owned :class:`~repro.parallel.ShardWorkerPool`
        to evaluate through; several backends may share one pool (each
        load is token-tagged, and a backend re-ships automatically when
        another tenant's load displaced its state).  The backend never
        closes an injected pool.
    auto_refresh:
        Rebuild all shards on relation-version mismatch before every
        evaluation (same contract as :class:`RelationIndex`).
    """

    name = "sharded"

    def __init__(
        self,
        relation: NestedRelation,
        vocabulary: Vocabulary,
        shard_size: int = DEFAULT_SHARD_SIZE,
        executor: "Executor | None" = None,
        processes: int | None = None,
        pool: "ShardWorkerPool | None" = None,
        auto_refresh: bool = True,
    ) -> None:
        if shard_size < 1:
            raise ValueError(f"shard_size must be positive, got {shard_size}")
        given = [
            name
            for name, value in (
                ("executor", executor),
                ("processes", processes),
                ("pool", pool),
            )
            if value is not None
        ]
        if len(given) > 1:
            raise ValueError(
                f"at most one of executor/processes/pool may be given, "
                f"got {', '.join(given)}"
            )
        self.relation = relation
        self.vocabulary = vocabulary
        self.shard_size = shard_size
        self.executor = executor
        self.processes = processes
        if processes is not None or pool is not None:
            from repro.parallel import PoolLease

            self._lease = PoolLease(pool=pool, processes=processes or 0)
        else:
            self._lease = None
        self._shipped_token: int | None = None
        self._shipped_generation: int | None = None
        self.auto_refresh = auto_refresh
        self._shards: list[_Shard] | None = None
        self._built_version: int | None = None

    # ------------------------------------------------------------------
    # Construction / freshness
    # ------------------------------------------------------------------
    def _build(self) -> None:
        objects = self.relation.objects
        size = self.shard_size
        self._shards = [
            _Shard(offset, objects[offset : offset + size], self.vocabulary)
            for offset in range(0, len(objects), size)
        ]
        self._objects = objects
        self._positions = {o.key: i for i, o in enumerate(objects)}
        self._built_version = getattr(self.relation, "version", None)
        # Worker-side state (if any) now describes a retired build; the
        # next pool evaluation re-ships (the invalidation broadcast).
        self._shipped_token = None

    @property
    def is_stale(self) -> bool:
        return (
            self._shards is None
            or getattr(self.relation, "version", None) != self._built_version
        )

    def refresh(self, force: bool = False) -> bool:
        if force or self.is_stale:
            self._build()
            return True
        return False

    def _ensure_fresh(self) -> None:
        if self._shards is None or (self.auto_refresh and self.is_stale):
            self._build()

    @property
    def shard_count(self) -> int:
        self._ensure_fresh()
        return len(self._shards)

    # ------------------------------------------------------------------
    # Worker-pool plumbing
    # ------------------------------------------------------------------
    @property
    def parallel(self) -> bool:
        """Is any parallel mode (executor or worker pool) configured?"""
        return self.executor is not None or self._lease is not None

    def _worker_pool(self) -> "ShardWorkerPool":
        """The active pool, (re)creating an owned one when necessary."""
        pool = self._lease.acquire()
        if self._shipped_generation != self._lease.generation:
            # A fresh pool (first use, or rebuilt after a crash) holds no
            # shard state yet.
            self._shipped_token = None
            self._shipped_generation = self._lease.generation
        return pool

    def _ship(self) -> int:
        """Broadcast the built shard payloads to the pool workers."""
        from repro.parallel import shard_payloads

        self._shipped_token = self._worker_pool().load_shards(
            shard_payloads(self._shards)
        )
        return self._shipped_token

    def _pool_evaluate(self, op: str, compiled: CompiledQuery) -> list:
        """One pool round trip with re-ship-and-retry on stale state.

        Stale answers happen when another backend sharing the pool
        shipped its own load since ours; re-shipping restores this
        backend's state and the retry answers from it.  A worker crash
        closes the pool — an owned pool is forgotten so the next
        evaluation starts a fresh one, and the error propagates either
        way.
        """
        from repro.parallel import StaleShardStateError, WorkerCrashError

        try:
            pool = self._worker_pool()
            token = (
                self._shipped_token
                if self._shipped_token is not None
                else self._ship()
            )
            evaluate = (
                pool.evaluate_bits if op == "bits" else pool.evaluate_labels
            )
            for retry in (False, True):
                try:
                    return evaluate(token, compiled)
                except StaleShardStateError:
                    if retry:
                        raise
                    token = self._ship()
            raise AssertionError("unreachable")  # pragma: no cover
        except WorkerCrashError:
            self._lease.reset_after_crash()
            raise

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def close(self) -> None:
        """Release the owned worker pool; safe to call twice (no-op).

        An injected ``pool=`` is caller-owned and stays open; the
        backend merely stops using it.
        """
        if self._lease is not None:
            self._lease.release()
        self._shipped_token = None

    def __enter__(self) -> "ShardedBitmaskBackend":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Evaluation
    # ------------------------------------------------------------------
    def _compiled(self, query: QhornQuery | CompiledQuery) -> CompiledQuery:
        check_width(query, self.vocabulary)
        return query.compile() if isinstance(query, QhornQuery) else query

    def _shard_answers(self, compiled: CompiledQuery) -> list[int]:
        """Per-shard answer bitsets (shard-local positions), shard order."""
        shards = self._shards
        if self._lease is not None and shards:
            return [bits for _offset, bits in self._pool_evaluate("bits", compiled)]
        if self.executor is not None and len(shards) > 1:
            return list(
                self.executor.map(
                    evaluate_inverted,
                    repeat(compiled),
                    [s.inverted for s in shards],
                    [s.all_bits for s in shards],
                )
            )
        return [
            evaluate_inverted(compiled, s.inverted, s.all_bits)
            for s in shards
        ]

    def matching_bits(self, query: QhornQuery | CompiledQuery) -> int:
        self._ensure_fresh()
        compiled = self._compiled(query)
        answers = 0
        for shard, bits in zip(self._shards, self._shard_answers(compiled)):
            answers |= bits << shard.offset
        return answers

    def execute(self, query: QhornQuery | CompiledQuery) -> list[NestedObject]:
        bits = self.matching_bits(query)
        return [self._objects[i] for i in bt.variables_of(bits)]

    def matches_many(
        self,
        query: QhornQuery | CompiledQuery,
        objects: Iterable[NestedObject] | None = None,
    ) -> list[bool]:
        self._ensure_fresh()
        compiled = self._compiled(query)
        if objects is None:
            if self._lease is not None and self._shards:
                # Full-relation labeling is the pool's best case: workers
                # run the kernel AND the label extraction; only compact
                # bool lists come back, reassembled in shard order.
                labels: list[bool] = []
                for _offset, shard_labels in self._pool_evaluate(
                    "labels", compiled
                ):
                    labels.extend(shard_labels)
                return labels
            answers = self._shard_answers(compiled)
            # Extract shard by shard so every >> stays shard-width.
            labels = []
            for shard, bits in zip(self._shards, answers):
                labels.extend(
                    bool(bits >> i & 1) for i in range(shard.count)
                )
            return labels
        answers = self._shard_answers(compiled)
        size = self.shard_size
        labels = []
        for obj in objects:
            position = self._positions.get(obj.key)
            if position is not None and self._objects[position] is obj:
                shard_idx, local = divmod(position, size)
                labels.append(bool(answers[shard_idx] >> local & 1))
            else:
                labels.append(
                    compiled.evaluate(self.vocabulary.boolean_tuples(obj.rows))
                )
        return labels

    def describe(self) -> str:
        if self._shards is None:
            return "sharded: shards not built yet"
        masks = sum(len(s.inverted) for s in self._shards)
        pool = self._lease.pool if self._lease is not None else None
        if pool is not None and not pool.closed:
            mode = f", {pool.processes}-process pool"
        elif self._lease is not None and not self._lease.closed:
            mode = ", process pool (workers start on first evaluation)"
        elif self.executor is not None:
            mode = ", parallel"
        else:
            mode = ""
        return (
            f"sharded: {len(self._objects)} objects in "
            f"{len(self._shards)} shard(s) of ≤{self.shard_size}, "
            f"{masks} inverted entries" + mode
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"ShardedBitmaskBackend({len(self.relation)} objects, "
            f"shard_size={self.shard_size})"
        )
