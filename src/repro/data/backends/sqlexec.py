"""SQL batch-execution backend: the database answers, not the process.

The source paper's SQL translation (:mod:`repro.data.sql`) was only used
for cross-checking learned queries; :class:`SqlBackend` promotes it to a
first-class evaluation backend behind the
:class:`~repro.data.backends.base.EvaluationBackend` seam.  The relation
loads once into a :class:`~repro.data.sql.SqliteEngine`'s two-table
encoding; each distinct query compiles to SQL **once** (an in-backend
statement cache keyed on the hashable :class:`QhornQuery`) and every
``matching_bits`` / ``matches_many`` call is a single round trip that
returns the whole answer set.

Because SQL evaluates propositions over the *real* rows while the
bitmask backends evaluate over vocabulary abstractions, answer identity
across the seam doubles as an end-to-end check that
``proposition_to_sql`` and ``Proposition.holds`` agree — the differential
property suite runs that check on ≥ 1000 seeded cases.

Foreign objects (not members of the relation) cannot be answered by the
loaded database; ``matches_many`` falls back to the compiled in-process
evaluation for exactly those, preserving the seam contract.
"""

from __future__ import annotations

from typing import Iterable

from repro.core import tuples as bt
from repro.core.query import CompiledQuery, QhornQuery
from repro.data.backends.base import check_width
from repro.data.propositions import Vocabulary
from repro.data.relation import NestedObject, NestedRelation
from repro.data.sql import SqliteEngine, to_sql

__all__ = ["SqlBackend"]


class SqlBackend:
    """Evaluates queries by executing their SQL compilation on SQLite.

    Parameters
    ----------
    relation, vocabulary:
        The evaluated pair; every vocabulary proposition must be SQL
        renderable (:func:`~repro.data.sql.proposition_to_sql`).
    auto_refresh:
        Reload the database on relation-version mismatch before every
        evaluation (same contract as the bitmask backends).
    """

    name = "sql"

    def __init__(
        self,
        relation: NestedRelation,
        vocabulary: Vocabulary,
        auto_refresh: bool = True,
    ) -> None:
        self.relation = relation
        self.vocabulary = vocabulary
        self.auto_refresh = auto_refresh
        self._engine: SqliteEngine | None = None
        self._sql_cache: dict[QhornQuery, str] = {}
        self._positions: dict[str, int] = {}
        self._objects: list[NestedObject] = []
        self._built_version: int | None = None

    # ------------------------------------------------------------------
    # Construction / freshness
    # ------------------------------------------------------------------
    def _build(self) -> None:
        if self._engine is None:
            self._engine = SqliteEngine(self.relation, self.vocabulary)
        else:
            self._engine.refresh(force=True)
        self._objects = self.relation.objects
        self._positions = {o.key: i for i, o in enumerate(self._objects)}
        self._built_version = getattr(self.relation, "version", None)

    @property
    def is_stale(self) -> bool:
        return (
            self._engine is None
            or getattr(self.relation, "version", None) != self._built_version
        )

    def refresh(self, force: bool = False) -> bool:
        if force or self.is_stale:
            self._build()
            return True
        return False

    def _ensure_fresh(self) -> None:
        if self._engine is None or (self.auto_refresh and self.is_stale):
            self._build()

    # ------------------------------------------------------------------
    # Evaluation
    # ------------------------------------------------------------------
    def _require_query(self, query: QhornQuery | CompiledQuery) -> QhornQuery:
        if not isinstance(query, QhornQuery):
            raise TypeError(
                "the SQL backend compiles propositions to SQL and needs the "
                "source QhornQuery, not a CompiledQuery"
            )
        check_width(query, self.vocabulary)
        return query

    def _sql_for(self, query: QhornQuery) -> str:
        sql = self._sql_cache.get(query)
        if sql is None:
            sql = self._sql_cache[query] = to_sql(query, self.vocabulary)
        return sql

    def _matching_keys(self, query: QhornQuery) -> set[str]:
        """One round trip: every answer object key of ``query``."""
        self._ensure_fresh()
        sql = self._sql_for(query)
        return {row[0] for row in self._engine.connection.execute(sql)}

    def matching_bits(self, query: QhornQuery | CompiledQuery) -> int:
        query = self._require_query(query)
        keys = self._matching_keys(query)
        positions = self._positions
        return bt.union_masks(1 << positions[k] for k in keys)

    def execute(self, query: QhornQuery | CompiledQuery) -> list[NestedObject]:
        query = self._require_query(query)
        keys = self._matching_keys(query)
        return [o for o in self._objects if o.key in keys]

    def matches_many(
        self,
        query: QhornQuery | CompiledQuery,
        objects: Iterable[NestedObject] | None = None,
    ) -> list[bool]:
        query = self._require_query(query)
        keys = self._matching_keys(query)
        if objects is None:
            return [o.key in keys for o in self._objects]
        compiled = query.compile()
        labels: list[bool] = []
        for obj in objects:
            position = self._positions.get(obj.key)
            if position is not None and self._objects[position] is obj:
                labels.append(obj.key in keys)
            else:
                labels.append(
                    compiled.evaluate(self.vocabulary.boolean_tuples(obj.rows))
                )
        return labels

    # ------------------------------------------------------------------
    # Lifecycle / introspection
    # ------------------------------------------------------------------
    def close(self) -> None:
        """Release the SQLite connection (safe to call twice)."""
        if self._engine is not None:
            self._engine.close()
            self._engine = None
            self._built_version = None

    def __enter__(self) -> "SqlBackend":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def describe(self) -> str:
        if self._engine is None:
            return "sql: database not loaded yet"
        return (
            f"sql: sqlite two-table encoding, {len(self._objects)} objects, "
            f"{len(self._sql_cache)} cached statements"
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"SqlBackend({len(self.relation)} objects)"
