"""The single-index bitmask backend: the seed batch path behind the seam.

:class:`BitmaskBackend` is a thin adapter around
:class:`~repro.data.index.RelationIndex` — the evaluation logic lives in
the index (and its shared :func:`~repro.data.index.evaluate_inverted`
kernel); the backend only adds the seam's lazy-build and describe
affordances.  This is the default backend of
:class:`~repro.data.engine.QueryEngine` and is behaviourally identical to
the pre-seam engine.
"""

from __future__ import annotations

from typing import Iterable

from repro.core.query import CompiledQuery, QhornQuery
from repro.data.backends.base import check_width
from repro.data.index import RelationIndex
from repro.data.propositions import Vocabulary
from repro.data.relation import NestedObject, NestedRelation

__all__ = ["BitmaskBackend"]


class BitmaskBackend:
    """One :class:`RelationIndex` over the whole relation.

    Parameters
    ----------
    relation, vocabulary:
        The evaluated pair.
    index:
        An existing :class:`RelationIndex` to adopt (shared across
        engines); must have been built over the same relation.  Built
        lazily on first evaluation otherwise.
    auto_refresh:
        Forwarded to the index: evaluations rebuild on version mismatch.
    """

    name = "bitmask"

    def __init__(
        self,
        relation: NestedRelation,
        vocabulary: Vocabulary,
        index: RelationIndex | None = None,
        auto_refresh: bool = True,
    ) -> None:
        if index is not None and index.relation is not relation:
            raise ValueError("index was built over a different relation")
        self.relation = relation
        self.vocabulary = vocabulary
        self.auto_refresh = auto_refresh
        self._index = index

    @property
    def index(self) -> RelationIndex:
        """The backing index, built on first access."""
        if self._index is None:
            self._index = RelationIndex(
                self.relation, self.vocabulary, auto_refresh=self.auto_refresh
            )
        return self._index

    def matching_bits(self, query: QhornQuery | CompiledQuery) -> int:
        check_width(query, self.vocabulary)
        return self.index.matching_bits(query)

    def execute(self, query: QhornQuery | CompiledQuery) -> list[NestedObject]:
        check_width(query, self.vocabulary)
        return self.index.execute(query)

    def matches_many(
        self,
        query: QhornQuery | CompiledQuery,
        objects: Iterable[NestedObject] | None = None,
    ) -> list[bool]:
        check_width(query, self.vocabulary)
        return self.index.matches_many(query, objects)

    @property
    def is_stale(self) -> bool:
        # "Not built yet" counts as stale, matching the sharded and SQL
        # backends, so warm-build-via-refresh works identically across
        # the seam.
        return self._index is None or self._index.is_stale

    def refresh(self, force: bool = False) -> bool:
        if self._index is None:
            self.index  # build
            return True
        return self._index.refresh(force=force)

    def describe(self) -> str:
        if self._index is None:
            return "bitmask: index not built yet"
        return (
            f"bitmask: {len(self._index)} objects, "
            f"{self._index.distinct_masks} distinct masks"
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"BitmaskBackend({len(self.relation)} objects)"
