"""External databases as first-class backends (DESIGN.md §2i).

:class:`~repro.data.backends.sqlexec.SqlBackend` proved the seam — the
database answers, not the process — but it owns one in-memory SQLite
connection and nothing else.  :class:`DbApiBackend` generalizes it to
*any* PEP 249 driver: the relation loads through a
:class:`~repro.data.sql.SqlDialect` (placeholder style, identifier
quoting, column-type mapping), each query compiles to dialect SQL once
(the same per-backend statement cache as ``SqlBackend``), and every
evaluation runs through a :class:`PooledConnectionSource` — a
thread-safe bounded pool with a health check on checkout and a
retry-once-on-stale-connection path, which is what a client/server
database needs and an in-process SQLite file tolerates.

Today the built-in connector is SQLite-over-URI (``uri=file:...`` for a
file-backed store, or the default per-backend shared-memory database),
so the whole path — pool, dialect rendering, one-round-trip answering —
is exercised hermetically; tomorrow a postgres driver plugs in by
passing ``connect=`` (any zero-argument callable returning a DB-API
connection) and ``dialect="postgres"``, with no further code changes.
"""

from __future__ import annotations

import itertools
import os
import sqlite3
import threading
import weakref
from collections import deque
from contextlib import contextmanager
from typing import Any, Callable, Iterable, Iterator

from repro.core import tuples as bt
from repro.core.query import CompiledQuery, QhornQuery
from repro.data.backends.base import check_width
from repro.data.backends.registry import BackendCapabilities
from repro.data.propositions import Vocabulary
from repro.data.relation import NestedObject, NestedRelation
from repro.data.sql import SqlDialect, get_dialect, to_sql

__all__ = [
    "DbApiBackend",
    "PooledConnectionSource",
    "pool_stats",
    "sqlite_connector",
]

#: Every live pool in this process, for aggregate metering.  A WeakSet
#: so pools vanish from the report when their owners drop them — the
#: registry observes, it never extends a pool's lifetime.
_POOLS: "weakref.WeakSet[PooledConnectionSource]" = weakref.WeakSet()

#: The counters every pool exposes, in reporting order.
POOL_COUNTERS = (
    "connections_opened",
    "checkouts",
    "health_failures",
    "stale_retries",
)


def pool_stats() -> dict[str, int]:
    """Process-wide connection-pool counters, summed over live pools.

    The serving tier folds these into each worker's ``stats()`` (as
    ``pool_*`` keys) so `repro serve --stats` reports pool health per
    worker and fleet-merged — the ROADMAP's "pool metrics surfaced
    through the server's metering" item.
    """
    totals = {name: 0 for name in POOL_COUNTERS}
    totals["pools"] = 0
    for pool in list(_POOLS):
        if getattr(pool, "_closed", False):
            continue  # closed pools linger in the weak set until GC
        totals["pools"] += 1
        for name in POOL_COUNTERS:
            totals[name] += getattr(pool, name, 0)
    return totals

#: Distinguishes the default shared-memory databases of concurrently
#: live backends in one process.
_memory_counter = itertools.count(1)


def memory_uri(tag: str = "dbapi") -> str:
    """A process-unique shared-cache in-memory SQLite URI.

    ``cache=shared`` makes the database visible to every connection the
    pool opens on this URI; the owner must hold one connection open for
    the database's lifetime (the backend's *keeper* connection).
    """
    return (
        f"file:repro-{tag}-{os.getpid()}-{next(_memory_counter)}"
        f"?mode=memory&cache=shared"
    )


def sqlite_connector(uri: str) -> Callable[[], sqlite3.Connection]:
    """The built-in connector: SQLite over a URI or plain path.

    ``check_same_thread=False`` because pooled connections migrate
    across threads (an executor labeling shards, the serve tier).
    """

    def connect() -> sqlite3.Connection:
        return sqlite3.connect(
            uri,
            uri=uri.startswith("file:"),
            check_same_thread=False,
        )

    return connect


def default_health_check(connection: Any) -> None:
    """``SELECT 1`` through a cursor — raises if the connection is dead."""
    cursor = connection.cursor()
    try:
        cursor.execute("SELECT 1")
        cursor.fetchall()
    finally:
        cursor.close()


class PooledConnectionSource:
    """Thread-safe bounded pool of DB-API connections.

    * ``acquire`` hands out an idle connection after the health check
      passes; a failed check discards the corpse and opens a fresh
      connection in its place (the retry-once-on-stale story), so a
      caller never receives a known-dead handle.
    * At most ``maxsize`` connections exist at once; excess acquirers
      block until a release (bounded like every other queue in this
      codebase — the §2f outbox, the §2b ask_all chunks).
    * ``close`` drains the idle set and refuses further checkouts;
      in-flight connections are closed on their release.
    """

    def __init__(
        self,
        connect: Callable[[], Any],
        maxsize: int = 4,
        health_check: Callable[[Any], None] | None = default_health_check,
        timeout: float | None = 30.0,
    ) -> None:
        if maxsize < 1:
            raise ValueError(f"pool maxsize must be positive, got {maxsize}")
        self._connect = connect
        self._maxsize = maxsize
        self._health_check = health_check
        self._timeout = timeout
        self._idle: deque[Any] = deque()
        self._lock = threading.Lock()
        self._available = threading.Condition(self._lock)
        self._live = 0
        self._closed = False
        # Introspection counters (describe(), pool_stats(), tests).
        self.connections_opened = 0
        self.checkouts = 0
        self.health_failures = 0
        #: Statements replayed on a fresh checkout after an in-flight
        #: driver error (callers increment via :meth:`count_stale_retry`).
        self.stale_retries = 0
        _POOLS.add(self)

    # ------------------------------------------------------------------
    def _open(self) -> Any:
        connection = self._connect()
        self.connections_opened += 1
        return connection

    def acquire(self) -> Any:
        """Check out a healthy connection (blocking while at capacity)."""
        with self._available:
            while True:
                if self._closed:
                    raise RuntimeError("connection pool is closed")
                if self._idle:
                    connection = self._idle.popleft()
                    break
                if self._live < self._maxsize:
                    self._live += 1
                    connection = None  # open outside the lock
                    break
                if not self._available.wait(self._timeout):
                    raise TimeoutError(
                        f"no pooled connection became available within "
                        f"{self._timeout}s (maxsize={self._maxsize})"
                    )
            self.checkouts += 1
        if connection is None:
            try:
                return self._open()
            except BaseException:
                self._forget()
                raise
        if self._health_check is not None:
            try:
                self._health_check(connection)
            except Exception:
                # Stale checkout: discard and retry once with a fresh
                # connection (which needs no health check — it is new).
                self.health_failures += 1
                self._close_quietly(connection)
                try:
                    return self._open()
                except BaseException:
                    self._forget()
                    raise
        return connection

    def release(self, connection: Any) -> None:
        """Return a connection to the idle set (closed pools close it)."""
        with self._available:
            if self._closed:
                self._live -= 1
                self._close_quietly(connection)
                return
            self._idle.append(connection)
            self._available.notify()

    def discard(self, connection: Any) -> None:
        """Drop a connection the caller saw fail; frees its pool slot."""
        self._close_quietly(connection)
        self._forget()

    def _forget(self) -> None:
        with self._available:
            self._live -= 1
            self._available.notify()

    @staticmethod
    def _close_quietly(connection: Any) -> None:
        try:
            connection.close()
        except Exception:
            pass

    def count_stale_retry(self) -> None:
        """Record one discard-and-replay after an in-flight failure."""
        self.stale_retries += 1

    @contextmanager
    def connection(self) -> Iterator[Any]:
        """``with pool.connection() as conn:`` checkout/checkin pair."""
        connection = self.acquire()
        try:
            yield connection
        finally:
            self.release(connection)

    def close(self) -> None:
        """Refuse further checkouts and close every idle connection."""
        with self._available:
            if self._closed:
                return
            self._closed = True
            idle = list(self._idle)
            self._idle.clear()
            self._live -= len(idle)
            self._available.notify_all()
        for connection in idle:
            self._close_quietly(connection)

    @property
    def idle_count(self) -> int:
        with self._lock:
            return len(self._idle)

    @property
    def live_count(self) -> int:
        with self._lock:
            return self._live

    def __enter__(self) -> "PooledConnectionSource":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()

    def describe(self) -> str:
        return (
            f"pool {self._live}/{self._maxsize} live "
            f"({self.checkouts} checkouts, "
            f"{self.health_failures} health failures, "
            f"{self.stale_retries} stale retries)"
        )


class DbApiBackend:
    """Evaluates queries on any DB-API database through a dialect + pool.

    Parameters (all reachable as CLI ``--backend-opt key=value``)
    ----------------------------------------------------------------
    uri:
        Database location for the built-in SQLite connector —
        ``file:/path/db.sqlite`` (file-backed), a plain path, or omitted
        for a private shared-memory database.  Ignored when ``connect``
        is given.
    dialect:
        ``"sqlite"`` (default) or ``"postgres"`` — or a
        :class:`~repro.data.sql.SqlDialect` instance when constructed in
        code.  Controls placeholder style, identifier quoting and
        column-type mapping end to end.
    connect:
        Zero-argument callable returning a DB-API connection; the
        third-party-driver seam.
    pool_size:
        Bound on concurrently open connections (default 4).
    auto_refresh:
        Reload the database on relation-version mismatch before every
        evaluation (the §2c contract).
    """

    name = "dbapi"
    capabilities = BackendCapabilities(
        supports_sql=True, supports_oracle=True
    )

    def __init__(
        self,
        relation: NestedRelation,
        vocabulary: Vocabulary,
        uri: str | None = None,
        dialect: SqlDialect | str | None = "sqlite",
        connect: Callable[[], Any] | None = None,
        pool_size: int = 4,
        auto_refresh: bool = True,
        retry_on: tuple[type[BaseException], ...] | None = None,
    ) -> None:
        self.relation = relation
        self.vocabulary = vocabulary
        self.auto_refresh = auto_refresh
        self.dialect = get_dialect(dialect)
        self._keeper: Any | None = None
        if connect is None:
            self.uri = uri if uri is not None else memory_uri()
            connect = sqlite_connector(self.uri)
            # A shared-memory database lives exactly as long as one
            # connection stays open; a keeper pins it across pool churn.
            # Harmless (one extra handle) for file-backed stores.
            self._keeper = connect()
            if retry_on is None:
                retry_on = (sqlite3.Error,)
        else:
            self.uri = uri
            if retry_on is None:
                retry_on = (Exception,)
        self._retry_on = retry_on
        self.pool = PooledConnectionSource(connect, maxsize=pool_size)
        self._sql_cache: dict[QhornQuery, str] = {}
        self._positions: dict[str, int] = {}
        self._objects: list[NestedObject] = []
        self._built_version: int | None = None
        self._loaded = False
        self._closed = False

    # ------------------------------------------------------------------
    # Loading / freshness
    # ------------------------------------------------------------------
    def _load(self, connection: Any) -> None:
        d = self.dialect
        schema = self.relation.schema
        objects_table = d.identifier("objects")
        rows_table = d.identifier("rows")
        cur = connection.cursor()
        cur.execute(f"DROP TABLE IF EXISTS {rows_table}")
        cur.execute(f"DROP TABLE IF EXISTS {objects_table}")
        object_cols = "".join(
            f", {d.identifier(a.name)} {d.column_type(a.type)}"
            for a in schema.object_attributes
        )
        cur.execute(
            f"CREATE TABLE {objects_table} "
            f"(object_key TEXT PRIMARY KEY{object_cols})"
        )
        row_cols = ", ".join(
            f"{d.identifier(a.name)} {d.column_type(a.type)}"
            for a in schema.embedded.attributes
        )
        cur.execute(
            f"CREATE TABLE {rows_table} "
            f"(object_key TEXT REFERENCES {objects_table}, {row_cols})"
        )
        cur.execute(
            f"CREATE INDEX rows_by_object ON {rows_table} (object_key)"
        )
        object_names = [a.name for a in schema.object_attributes]
        insert_objects = (
            f"INSERT INTO {objects_table} VALUES "
            f"({d.placeholders(['object_key'] + object_names)})"
        )
        row_names = list(schema.embedded.attribute_names)
        insert_rows = (
            f"INSERT INTO {rows_table} VALUES "
            f"({d.placeholders(['object_key'] + row_names)})"
        )
        pyformat = d.paramstyle == "pyformat"
        for obj in self.relation:
            object_params: Any = [obj.key] + [
                obj.attributes.get(n) for n in object_names
            ]
            if pyformat:
                object_params = dict(
                    zip(["object_key"] + object_names, object_params)
                )
            cur.execute(insert_objects, object_params)
            for row in obj.rows:
                row_params: Any = [obj.key] + [row[n] for n in row_names]
                if pyformat:
                    row_params = dict(
                        zip(["object_key"] + row_names, row_params)
                    )
                cur.execute(insert_rows, row_params)
        cur.close()
        connection.commit()
        self._objects = self.relation.objects
        self._positions = {o.key: i for i, o in enumerate(self._objects)}
        self._built_version = getattr(self.relation, "version", None)
        self._loaded = True

    def _build(self) -> None:
        with self.pool.connection() as connection:
            self._load(connection)

    @property
    def is_stale(self) -> bool:
        return (
            not self._loaded
            or getattr(self.relation, "version", None) != self._built_version
        )

    def refresh(self, force: bool = False) -> bool:
        if force or self.is_stale:
            self._build()
            return True
        return False

    def _ensure_fresh(self) -> None:
        if not self._loaded or (self.auto_refresh and self.is_stale):
            self._build()

    # ------------------------------------------------------------------
    # Evaluation
    # ------------------------------------------------------------------
    def _require_query(self, query: QhornQuery | CompiledQuery) -> QhornQuery:
        if not isinstance(query, QhornQuery):
            raise TypeError(
                "the dbapi backend compiles propositions to dialect SQL "
                "and needs the source QhornQuery, not a CompiledQuery"
            )
        check_width(query, self.vocabulary)
        return query

    def _sql_for(self, query: QhornQuery) -> str:
        sql = self._sql_cache.get(query)
        if sql is None:
            sql = self._sql_cache[query] = to_sql(
                query, self.vocabulary, dialect=self.dialect
            )
        return sql

    def _select(self, sql: str) -> list[tuple]:
        """One round trip through the pool, retried once on driver error.

        A stale handle that slipped past the checkout health check (or a
        server that dropped the connection mid-flight) is discarded and
        the statement re-runs on a fresh checkout; a second failure is
        the caller's problem.
        """
        connection = self.pool.acquire()
        try:
            try:
                cursor = connection.cursor()
                cursor.execute(sql)
                rows = cursor.fetchall()
                cursor.close()
                return rows
            except self._retry_on:
                self.pool.discard(connection)
                self.pool.count_stale_retry()
                connection = None
                connection = self.pool.acquire()
                cursor = connection.cursor()
                cursor.execute(sql)
                rows = cursor.fetchall()
                cursor.close()
                return rows
        finally:
            if connection is not None:
                self.pool.release(connection)

    def _matching_keys(self, query: QhornQuery) -> set[str]:
        """One round trip: every answer object key of ``query``."""
        self._ensure_fresh()
        return {row[0] for row in self._select(self._sql_for(query))}

    def matching_bits(self, query: QhornQuery | CompiledQuery) -> int:
        query = self._require_query(query)
        keys = self._matching_keys(query)
        positions = self._positions
        return bt.union_masks(1 << positions[k] for k in keys)

    def execute(self, query: QhornQuery | CompiledQuery) -> list[NestedObject]:
        query = self._require_query(query)
        keys = self._matching_keys(query)
        return [o for o in self._objects if o.key in keys]

    def matches_many(
        self,
        query: QhornQuery | CompiledQuery,
        objects: Iterable[NestedObject] | None = None,
    ) -> list[bool]:
        query = self._require_query(query)
        keys = self._matching_keys(query)
        if objects is None:
            return [o.key in keys for o in self._objects]
        compiled = query.compile()
        labels: list[bool] = []
        for obj in objects:
            position = self._positions.get(obj.key)
            if position is not None and self._objects[position] is obj:
                labels.append(obj.key in keys)
            else:
                # Foreign object: not in the loaded database; abstract
                # and evaluate in process (the §2c seam contract).
                labels.append(
                    compiled.evaluate(self.vocabulary.boolean_tuples(obj.rows))
                )
        return labels

    # ------------------------------------------------------------------
    # Lifecycle / introspection
    # ------------------------------------------------------------------
    def close(self) -> None:
        """Release the pool and the keeper (safe to call twice)."""
        if self._closed:
            return
        self._closed = True
        self.pool.close()
        if self._keeper is not None:
            try:
                self._keeper.close()
            except Exception:
                pass
            self._keeper = None
        self._loaded = False

    def __enter__(self) -> "DbApiBackend":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()

    def describe(self) -> str:
        where = self.uri or "driver connection"
        if not self._loaded:
            return f"dbapi[{self.dialect.name}]: not loaded yet ({where})"
        return (
            f"dbapi[{self.dialect.name}]: {len(self._objects)} objects at "
            f"{where}, {len(self._sql_cache)} cached statements, "
            f"{self.pool.describe()}"
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"DbApiBackend({len(self.relation)} objects, {self.uri!r})"
