"""The ``EvaluationBackend`` seam (DESIGN.md §2c).

The paper (§5) observes that membership questions can be answered either
by synthesizing examples or by evaluating against a real database.  This
module pins down the contract every evaluation backend satisfies, so the
learner/oracle stack above :class:`~repro.data.engine.QueryEngine` never
cares *how* a relation is evaluated — in-process bitmask algebra, sharded
bitmask blocks, a SQL database, or any future remote/async executor.

The contract
------------
A backend is bound to one ``(relation, vocabulary)`` pair and answers:

* :meth:`~EvaluationBackend.matching_bits` — the object-position bitset
  (bit ``i`` set iff object ``i`` in relation order is an answer);
* :meth:`~EvaluationBackend.execute` — the answer objects in relation
  order;
* :meth:`~EvaluationBackend.matches_many` — per-object answer labels, for
  the whole relation (``objects=None``) or an explicit object list,
  where *foreign* objects (not members of the relation) are abstracted
  through the vocabulary and evaluated via the compiled query.

**Answer identity.**  On identical relation state, every backend returns
exactly the answers of the per-object reference path
(``QhornQuery.evaluate`` over ``Vocabulary.abstract_object``), for every
qhorn query, including ``require_guarantees`` witness edge cases and
empty objects.  The differential property suite
(``tests/properties/test_prop_backends.py``) enforces pairwise agreement
across all registered backends on ≥ 1000 seeded cases.

**Versioning / refresh.**  Backends snapshot the relation's monotone
``version`` counter when they build.  With ``auto_refresh=True`` (the
default everywhere) every evaluation first compares counters and rebuilds
on mismatch, so inserts are never silently ignored; :attr:`is_stale` and
:meth:`refresh` expose the same contract explicitly.  In-place mutation
of an object's ``rows`` bypasses the counter — callers must
``refresh(force=True)``.

**Determinism.**  Answer order is relation order; sharding/partitioning
is an internal layout choice that must not leak into answers (shard
boundaries are unobservable, exactly like oracle batch boundaries in
DESIGN.md §2b).
"""

from __future__ import annotations

from typing import Iterable, Protocol, runtime_checkable

from repro.core.query import CompiledQuery, QhornQuery
from repro.data.propositions import Vocabulary
from repro.data.relation import NestedObject, NestedRelation

__all__ = ["EvaluationBackend", "check_width"]


def check_width(
    query: QhornQuery | CompiledQuery, vocabulary: Vocabulary
) -> None:
    """Shared width validation: query and vocabulary must agree on ``n``."""
    if query.n != vocabulary.n:
        raise ValueError(
            f"query over n={query.n} propositions, vocabulary has "
            f"{vocabulary.n}"
        )


@runtime_checkable
class EvaluationBackend(Protocol):
    """Anything that can evaluate qhorn queries over one nested relation.

    The seam's input type is the *source* :class:`QhornQuery`: backends
    compile it into whatever internal form they need (bitmasks, SQL).
    The bitmask-family backends additionally accept a pre-compiled
    :class:`~repro.core.query.CompiledQuery` as an optimization, but a
    ``CompiledQuery`` has no propositions and therefore cannot cross
    every backend (the SQL backend rejects it with ``TypeError``) —
    backend-generic callers must pass the ``QhornQuery``, as
    :class:`~repro.data.engine.QueryEngine` does.
    """

    #: Registry name (``"bitmask"``, ``"sharded"``, ``"sql"``, ...).
    name: str
    relation: NestedRelation
    vocabulary: Vocabulary

    def matching_bits(self, query: QhornQuery) -> int:
        """Object-position bitset of the relation's answers to ``query``."""
        ...

    def execute(self, query: QhornQuery) -> list[NestedObject]:
        """The relation's answers to ``query``, in relation order."""
        ...

    def matches_many(
        self,
        query: QhornQuery,
        objects: Iterable[NestedObject] | None = None,
    ) -> list[bool]:
        """Per-object answer labels (whole relation when ``objects=None``)."""
        ...

    @property
    def is_stale(self) -> bool:
        """Has the relation been mutated since the backend last built?"""
        ...

    def refresh(self, force: bool = False) -> bool:
        """Rebuild if stale (or unconditionally with ``force``); returns
        whether a rebuild happened."""
        ...

    def describe(self) -> str:
        """One-line human-readable summary (CLI/demo affordance)."""
        ...
