"""Flat and nested relation instances (Defs. 2.1–2.3).

Objects of a nested relation are the things membership questions display and
queries classify; rows of the embedded flat relation are what propositions
evaluate over (Fig. 1's boxes and chocolates).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterable, Iterator, Mapping

from repro.data.schema import FlatSchema, NestedSchema, SchemaError

__all__ = ["FlatRelation", "NestedObject", "NestedRelation"]


class FlatRelation:
    """A validated bag of rows over a :class:`FlatSchema`."""

    def __init__(
        self, schema: FlatSchema, rows: Iterable[Mapping[str, Any]] = ()
    ) -> None:
        self.schema = schema
        self._rows: list[dict[str, Any]] = []
        self._version = 0
        for row in rows:
            self.insert(row)

    @property
    def version(self) -> int:
        """Monotone counter bumped on every mutation; index/cache layers
        compare it to detect staleness."""
        return self._version

    def insert(self, row: Mapping[str, Any]) -> None:
        self.schema.validate_row(row)
        self._rows.append(dict(row))
        self._version += 1

    @property
    def rows(self) -> list[dict[str, Any]]:
        """Copies of the stored rows; mutating them leaves the relation
        untouched."""
        return [dict(r) for r in self._rows]

    def __len__(self) -> int:
        return len(self._rows)

    def __iter__(self) -> Iterator[dict[str, Any]]:
        return iter(self._rows)


@dataclass
class NestedObject:
    """One element of a nested relation: scalar attributes + embedded rows.

    The paper calls these *objects* (boxes); their embedded rows are the
    *tuples* (chocolates) that quantified expressions range over.
    """

    key: str
    rows: list[dict[str, Any]] = field(default_factory=list)
    attributes: dict[str, Any] = field(default_factory=dict)

    def __len__(self) -> int:
        return len(self.rows)

    def format(self, columns: Iterable[str] | None = None) -> str:
        """Human-readable table of the object's rows."""
        if not self.rows:
            return f"{self.key}: (empty)"
        cols = list(columns) if columns else sorted(self.rows[0])
        widths = {
            c: max(len(c), *(len(str(r.get(c, ""))) for r in self.rows))
            for c in cols
        }
        header = "  ".join(c.ljust(widths[c]) for c in cols)
        lines = [f"{self.key}:", "  " + header]
        for r in self.rows:
            lines.append(
                "  " + "  ".join(str(r.get(c, "")).ljust(widths[c]) for c in cols)
            )
        return "\n".join(lines)


class NestedRelation:
    """A validated collection of :class:`NestedObject` over a nested schema."""

    def __init__(
        self, schema: NestedSchema, objects: Iterable[NestedObject] = ()
    ) -> None:
        self.schema = schema
        self._objects: list[NestedObject] = []
        self._by_key: dict[str, NestedObject] = {}
        self._version = 0
        for obj in objects:
            self.insert(obj)

    @property
    def version(self) -> int:
        """Monotone counter bumped on every mutation; index/cache layers
        (``RelationIndex``, ``ExampleFactory``) compare it to detect
        staleness.  In-place edits to an object's ``rows`` bypass it — use
        the explicit ``refresh()`` of the dependent layer in that case."""
        return self._version

    def insert(self, obj: NestedObject) -> None:
        # A key map keeps insert and get O(1); the seed's linear scans made
        # building a relation quadratic, which the backend-scale benchmark
        # (E23) turns into the dominant cost at tens of thousands of objects.
        if obj.key in self._by_key:
            raise SchemaError(f"duplicate object key {obj.key!r}")
        self.schema.validate_object_attributes(obj.attributes)
        for row in obj.rows:
            self.schema.embedded.validate_row(row)
        self._objects.append(obj)
        self._by_key[obj.key] = obj
        self._version += 1

    def add_object(
        self,
        key: str,
        rows: Iterable[Mapping[str, Any]],
        attributes: Mapping[str, Any] | None = None,
    ) -> NestedObject:
        obj = NestedObject(
            key=key,
            rows=[dict(r) for r in rows],
            attributes=dict(attributes or {}),
        )
        self.insert(obj)
        return obj

    @property
    def objects(self) -> list[NestedObject]:
        return list(self._objects)

    def get(self, key: str) -> NestedObject:
        try:
            return self._by_key[key]
        except KeyError:
            raise KeyError(key) from None

    def all_rows(self) -> list[dict[str, Any]]:
        """Every embedded row across all objects (the flattened relation)."""
        return [row for obj in self._objects for row in obj.rows]

    def __len__(self) -> int:
        return len(self._objects)

    def __iter__(self) -> Iterator[NestedObject]:
        return iter(self._objects)
