"""Batch bitmask evaluation over a nested relation.

The seed :class:`~repro.data.engine.QueryEngine` re-abstracts every object's
rows through the :class:`~repro.data.propositions.Vocabulary` on every
``matches()`` call — the hot path of every benchmark and every oracle
answer.  A :class:`RelationIndex` pays that abstraction cost once:

* each object's rows collapse to a ``frozenset`` of Boolean-tuple bitmasks;
* an *inverted index* maps each distinct mask to the **object-position
  bitset** of the objects exhibiting it (an arbitrary-width ``int`` with
  bit ``i`` set iff object ``i`` contains the mask).

Evaluating a :class:`~repro.core.query.CompiledQuery` then reduces to set
algebra over big integers: a universal Horn expression contributes one
"violators" bitset and one "witnesses" bitset (unions over the distinct
masks, not over objects), an existential conjunction one "witnesses"
bitset, and the answer set is a handful of AND/OR/NOT operations.  The
cost per query is ``O(#distinct_masks × #expressions)`` plus machine-word
bit operations — independent of relation size once masks repeat, which
they necessarily do for relations far larger than ``2^n``.

Agreement with the per-object reference path is enforced by the
differential property suite in ``tests/properties/test_prop_engine.py``;
the representation and contract are documented in DESIGN.md §2.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Mapping

from repro.core import tuples as bt
from repro.core.query import CompiledQuery, QhornQuery
from repro.data.propositions import Vocabulary
from repro.data.relation import NestedObject, NestedRelation

__all__ = ["RelationIndex", "evaluate_inverted", "labels_of"]

#: Byte value → its 8 bit labels (LSB first), so decoding an
#: object-position bitset costs one table lookup per 8 positions.
_BYTE_LABELS = tuple(
    tuple(bool(value >> i & 1) for i in range(8)) for value in range(256)
)


def labels_of(bits: int, count: int) -> list[bool]:
    """Decode an object-position bitset into ``count`` per-position labels.

    The obvious ``bits >> i & 1`` loop re-shifts the full big integer per
    position — ``O(count)`` per shift, ``O(count²)`` for a pass — which
    dominated full-relation labeling at large relations.  ``to_bytes``
    extracts every position in one linear pass instead; a 256-entry table
    then expands each byte to its 8 labels.  Shared by every bitmask
    evaluation path: :meth:`RelationIndex.matches_many`, the sharded
    backend's serial extraction and the worker-side extraction in
    :mod:`repro.parallel.worker`.
    """
    if count <= 0:
        return []
    out: list[bool] = []
    for byte in bits.to_bytes((count + 7) // 8, "little"):
        out.extend(_BYTE_LABELS[byte])
    del out[count:]
    return out


def evaluate_inverted(
    compiled: CompiledQuery, inverted: Mapping[int, int], all_bits: int
) -> int:
    """Core bitset algebra: the answer bitset of ``compiled`` over one
    inverted ``mask → object-position bitset`` index covering the objects
    of ``all_bits``.

    This is the single evaluation kernel shared by every bitmask backend:
    :class:`RelationIndex` runs it over the whole relation, the sharded
    backend runs it once per shard (each shard's bitsets are bounded to
    the shard width, positions are shard-local).
    """
    answers = all_bits
    for body, head in compiled.universal_masks:
        violators = 0
        witnesses = 0
        for m, bits in inverted.items():
            if (m & body) == body:
                if m & head:
                    witnesses |= bits
                else:
                    violators |= bits
        answers &= ~violators
        if compiled.require_guarantees:
            answers &= witnesses
        if not answers:
            return 0
    for mask in compiled.existential_masks:
        answers &= bt.union_masks(
            bits for m, bits in inverted.items() if (m & mask) == mask
        )
        if not answers:
            return 0
    return answers


class RelationIndex:
    """Precomputed mask sets + inverted mask index for one nested relation.

    Parameters
    ----------
    relation:
        The indexed :class:`NestedRelation`.
    vocabulary:
        The abstraction vocabulary; its width fixes the query width.
    auto_refresh:
        When ``True`` (default), every evaluation first compares the
        relation's ``version`` counter against the version the index was
        built from and rebuilds on mismatch, so objects inserted after
        construction are never silently ignored.  In-place mutation of an
        object's ``rows`` list bypasses the counter — call
        :meth:`refresh` with ``force=True`` after doing that.
    """

    def __init__(
        self,
        relation: NestedRelation,
        vocabulary: Vocabulary,
        auto_refresh: bool = True,
    ) -> None:
        self.relation = relation
        self.vocabulary = vocabulary
        self.auto_refresh = auto_refresh
        self._build()

    # ------------------------------------------------------------------
    # Construction / freshness
    # ------------------------------------------------------------------
    def _build(self) -> None:
        objects = self.relation.objects
        # Bulk abstraction: one distinct-row memo across the whole build.
        mask_sets = self.vocabulary.mask_sets(obj.rows for obj in objects)
        inverted: dict[int, int] = {}
        for position, masks in enumerate(mask_sets):
            bit = 1 << position
            for m in masks:
                inverted[m] = inverted.get(m, 0) | bit
        self._objects = objects
        self._mask_sets = mask_sets
        self._inverted = inverted
        self._positions = {o.key: i for i, o in enumerate(objects)}
        self._all_bits = (1 << len(objects)) - 1
        self._built_version = getattr(self.relation, "version", None)

    @property
    def is_stale(self) -> bool:
        """Has the relation been mutated since the index was built?"""
        return getattr(self.relation, "version", None) != self._built_version

    def refresh(self, force: bool = False) -> bool:
        """Rebuild if stale (or unconditionally with ``force``); returns
        whether a rebuild happened."""
        if force or self.is_stale:
            self._build()
            return True
        return False

    def _ensure_fresh(self) -> None:
        if self.auto_refresh and self.is_stale:
            self._build()

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        self._ensure_fresh()
        return len(self._objects)

    @property
    def distinct_masks(self) -> int:
        """Number of distinct Boolean tuples across the whole relation."""
        self._ensure_fresh()
        return len(self._inverted)

    def mask_set(self, obj: NestedObject) -> frozenset[int]:
        """The abstracted mask set of ``obj`` — from the index when the
        object belongs to the relation, abstracted on the fly otherwise."""
        self._ensure_fresh()
        position = self._positions.get(obj.key)
        if position is not None and self._objects[position] is obj:
            return self._mask_sets[position]
        return frozenset(self.vocabulary.boolean_tuples(obj.rows))

    # ------------------------------------------------------------------
    # Batch evaluation
    # ------------------------------------------------------------------
    def matching_bits(self, query: QhornQuery | CompiledQuery) -> int:
        """Object-position bitset of the relation's answers to ``query``."""
        self._ensure_fresh()
        compiled = query.compile() if isinstance(query, QhornQuery) else query
        if compiled.n != self.vocabulary.n:
            raise ValueError(
                f"query over n={compiled.n} propositions, vocabulary has "
                f"{self.vocabulary.n}"
            )
        return evaluate_inverted(compiled, self._inverted, self._all_bits)

    def execute(self, query: QhornQuery | CompiledQuery) -> list[NestedObject]:
        """The relation's answers to ``query``, in relation order."""
        bits = self.matching_bits(query)
        return [self._objects[i] for i in bt.variables_of(bits)]

    def matches_many(
        self,
        query: QhornQuery | CompiledQuery,
        objects: Iterable[NestedObject] | None = None,
    ) -> list[bool]:
        """Per-object answer labels, reusing the index for indexed objects.

        With ``objects=None`` labels the whole relation (in relation
        order).  Foreign objects — not part of the indexed relation — are
        abstracted once and evaluated through the compiled query.
        """
        bits = self.matching_bits(query)
        if objects is None:
            return labels_of(bits, len(self._objects))
        compiled = query.compile() if isinstance(query, QhornQuery) else query
        labels: list[bool] = []
        for obj in objects:
            position = self._positions.get(obj.key)
            if position is not None and self._objects[position] is obj:
                labels.append(bool(bits >> position & 1))
            else:
                labels.append(
                    compiled.evaluate(self.vocabulary.boolean_tuples(obj.rows))
                )
        return labels

    def __iter__(self) -> Iterator[frozenset[int]]:
        """Iterate the per-object mask sets, in relation order."""
        self._ensure_fresh()
        return iter(self._mask_sets)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"RelationIndex({len(self._objects)} objects, "
            f"{self.distinct_masks} distinct masks, n={self.vocabulary.n})"
        )
