"""Serialization of round payloads: membership and expression questions.

Rounds carry either membership :class:`~repro.core.tuples.Question`
objects or :class:`~repro.oracle.expression.ExpressionQuestion` payloads
(DESIGN.md §2e); snapshots and the stdio wire must round-trip both.
Membership questions keep the paper-style tuple-string form of
:func:`~repro.core.serialize.question_to_dict`; expression questions are
tagged by their ``kind`` key, which no membership dict has.
"""

from __future__ import annotations

from typing import Any

from repro.core.serialize import question_from_dict, question_to_dict
from repro.core.tuples import Question
from repro.oracle.expression import ExpressionQuestion
from repro.protocol.core import ProtocolError

__all__ = ["payload_to_dict", "payload_from_dict", "decode_answers"]


def payload_to_dict(question: Any) -> dict[str, Any]:
    """Serialize one round payload (membership or expression question)."""
    if isinstance(question, Question):
        return question_to_dict(question)
    if isinstance(question, ExpressionQuestion):
        data: dict[str, Any] = {
            "kind": question.kind,
            "variables": list(question.variables),
        }
        if question.head is not None:
            data["head"] = question.head
        return data
    raise TypeError(
        f"cannot serialize round payload of type {type(question).__name__}"
    )


def decode_answers(message: dict[str, Any]) -> list[bool]:
    """Validate and coerce the ``"answers"`` payload of a wire message.

    Malformed clients are a protocol condition, not a server crash: a
    message with no ``"answers"`` key must not silently become an empty
    batch, and a non-list value (``"answers": true``, a string, an
    object…) must not surface as a ``TypeError`` in a comprehension.
    Both raise :class:`~repro.protocol.core.ProtocolError`, which every
    server loop converts into a recoverable ``{"type": "error"}`` line.
    """
    if "answers" not in message:
        raise ProtocolError('answers message has no "answers" key')
    answers = message["answers"]
    if not isinstance(answers, list):
        raise ProtocolError(
            f'"answers" must be a list of booleans, '
            f"got {type(answers).__name__}"
        )
    return [bool(a) for a in answers]


def payload_from_dict(data: dict[str, Any]) -> Question | ExpressionQuestion:
    """Inverse of :func:`payload_to_dict`."""
    if "kind" in data:
        return ExpressionQuestion(
            kind=data["kind"],
            variables=tuple(int(v) for v in data["variables"]),
            head=(None if data.get("head") is None else int(data["head"])),
        )
    return question_from_dict(data)
