"""Asyncio driver: answer learner rounds without blocking a thread.

The sans-io protocol means the event loop only parks *between rounds*: a
learner driven by :class:`AsyncDriver` holds no thread while a remote
user (a queue, a socket, a human UI) takes minutes over a batch, so one
process can interleave thousands of sessions.  The driver mirrors
:func:`repro.protocol.drivers.drive` exactly — batched rounds through
:func:`~repro.oracle.aio.ask_all_async` (same chunk boundaries as the
synchronous path), single-ask rounds through ``oracle.ask`` — so a
synchronous oracle stack wrapped in :class:`~repro.oracle.aio.AsyncOracle`
observes bit-identical transport calls and statistics.
"""

from __future__ import annotations

import inspect
from typing import Any

from repro.oracle.aio import ask_all_async
from repro.oracle.expression import ExpressionQuestion
from repro.protocol.core import Finished, Round, as_protocol

__all__ = ["answer_round_async", "async_drive", "AsyncDriver"]


async def answer_round_async(oracle: Any, round_: Round) -> list[bool]:
    """Async twin of :func:`repro.protocol.drivers.answer_round`."""
    questions = round_.questions
    if isinstance(questions[0], ExpressionQuestion):
        answers = []
        for q in questions:
            answer = q.answer_with(oracle)
            if inspect.isawaitable(answer):
                answer = await answer
            answers.append(bool(answer))
        return answers
    if round_.batched:
        return await ask_all_async(oracle, questions)
    return [bool(await oracle.ask(q)) for q in questions]


async def async_drive(learner: Any, oracle: Any) -> Any:
    """Run a step-driven learner against an async oracle."""
    protocol = as_protocol(learner)
    event = protocol.start()
    while not isinstance(event, Finished):
        event = protocol.feed(await answer_round_async(oracle, event))
    return event.result


class AsyncDriver:
    """Drives step learners against an :class:`AsyncMembershipOracle`."""

    def __init__(self, oracle: Any) -> None:
        self.oracle = oracle

    async def run(self, learner: Any) -> Any:
        return await async_drive(learner, self.oracle)
