"""Sans-io learner protocol: rounds out, answers in (DESIGN.md §2e).

The paper's dialogues are turn-based — the learner shows the user a batch
of membership questions, the user labels them, repeat (Abouzied et al.,
PODS 2013).  This module makes those *rounds* the API surface instead of
an implementation detail buried in call stacks: a learner is a generator
of :class:`Round` objects that receives the answers at each ``yield``,
and :class:`LearnerProtocol` wraps that generator behind
``start() -> Round | Finished`` / ``feed(answers) -> Round | Finished``.

Nothing in this module performs I/O or touches an oracle.  Drivers live
in :mod:`repro.protocol.drivers` (synchronous, bit-identical to the old
pull path) and :mod:`repro.protocol.aio` (asyncio, for remote answerers);
:class:`~repro.interactive.session.LearningSession` builds parking and
snapshot/resume on top.

Writing a step-driven learner
-----------------------------
A learner's ``steps()`` method is a generator that yields rounds and
receives answer lists::

    def steps(self):
        answers = yield from ask_round([q1, q2, q3])   # one batch
        if (yield from ask_one(q4)):                    # one question
            ...
        return result

``ask_round`` corresponds to the old ``ask_all(oracle, ...)`` call and
``ask_one`` to ``oracle.ask(...)``; the distinction is preserved in
:attr:`Round.batched` so drivers reproduce the exact transport calls —
and therefore the exact wrapper statistics — of the pull-based code.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Generator, Iterable, Sequence

__all__ = [
    "Round",
    "Finished",
    "ProtocolError",
    "LearnerProtocol",
    "StepLearner",
    "as_protocol",
    "ask_one",
    "ask_round",
    "run_inline",
]

#: A learner step generator: yields rounds, receives answer sequences,
#: returns the learner's result.
Steps = Generator["Round", Sequence[bool], Any]


class ProtocolError(RuntimeError):
    """The step protocol was driven out of order or fed bad answers."""


@dataclass(frozen=True)
class Round:
    """One turn of the dialogue: the questions the learner needs next.

    ``questions`` usually holds :class:`~repro.core.tuples.Question`
    membership questions; the expression learner emits
    :class:`~repro.oracle.expression.ExpressionQuestion` payloads through
    the same protocol.  ``batched`` records how the pull-based code issued
    this round — ``True`` for an ``ask_all`` batch, ``False`` for a single
    ``oracle.ask`` call — so drivers can replay the exact transport
    pattern (round statistics count transport calls).
    """

    questions: tuple[Any, ...]
    batched: bool = True

    def __post_init__(self) -> None:
        if not self.questions:
            raise ProtocolError("a round must carry at least one question")

    def __len__(self) -> int:
        return len(self.questions)


@dataclass(frozen=True)
class Finished:
    """Terminal protocol event: the learner's result."""

    result: Any


def ask_one(question: Any) -> Steps:
    """Yield-point equivalent of ``oracle.ask(question)``.

    Usage inside a step generator: ``answer = yield from ask_one(q)``.
    """
    answers = yield Round((question,), batched=False)
    return bool(answers[0])


def ask_round(questions: Iterable[Any]) -> Steps:
    """Yield-point equivalent of ``ask_all(oracle, questions)``.

    An empty batch asks nothing and returns ``[]``, exactly like
    :func:`~repro.oracle.base.ask_all` (which issues no transport call for
    an empty list).
    """
    questions = tuple(questions)
    if not questions:
        return []
    answers = yield Round(questions, batched=True)
    if len(answers) != len(questions):
        raise ProtocolError(
            f"round of {len(questions)} questions got {len(answers)} answers"
        )
    return list(answers)


class LearnerProtocol:
    """State machine over a learner's step generator.

    ``start()`` runs the learner to its first round; each ``feed(answers)``
    supplies the pending round's labels and runs to the next round (or to
    :class:`Finished`).  The protocol object never touches an oracle — the
    caller decides where answers come from, which is what lets one learner
    body serve synchronous drivers, asyncio drivers, and parked/resumed
    server sessions.
    """

    def __init__(self, steps: Steps) -> None:
        self._gen = steps
        self._started = False
        self._event: Round | Finished | None = None
        #: Rounds emitted so far (including the pending one).
        self.rounds = 0
        #: Questions answered via :meth:`feed` so far.
        self.questions_answered = 0

    # -- state ---------------------------------------------------------
    @property
    def pending(self) -> Round | None:
        """The unanswered round, if the learner is waiting on one."""
        return self._event if isinstance(self._event, Round) else None

    @property
    def finished(self) -> bool:
        return isinstance(self._event, Finished)

    @property
    def result(self) -> Any:
        if not isinstance(self._event, Finished):
            raise ProtocolError("learner has not finished")
        return self._event.result

    # -- transitions ---------------------------------------------------
    def start(self) -> Round | Finished:
        """Run the learner to its first round (or straight to the result)."""
        if self._started:
            raise ProtocolError("protocol already started")
        self._started = True
        return self._advance(lambda: next(self._gen))

    def feed(self, answers: Sequence[bool]) -> Round | Finished:
        """Answer the pending round and run to the next event."""
        pending = self.pending
        if pending is None:
            raise ProtocolError(
                "no pending round to feed"
                if self._started
                else "feed() before start()"
            )
        if len(answers) != len(pending.questions):
            raise ProtocolError(
                f"pending round has {len(pending.questions)} questions, "
                f"got {len(answers)} answers"
            )
        coerced = [bool(a) for a in answers]
        self.questions_answered += len(coerced)
        return self._advance(lambda: self._gen.send(coerced))

    def _advance(self, step) -> Round | Finished:
        try:
            event = step()
        except StopIteration as stop:
            self._event = Finished(stop.value)
            return self._event
        if not isinstance(event, Round):
            raise ProtocolError(
                f"step generator yielded {type(event).__name__}, "
                "expected a Round"
            )
        self._event = event
        self.rounds += 1
        return event


class StepLearner:
    """Structural type of a step-driven learner: anything with ``steps()``."""

    def steps(self) -> Steps:  # pragma: no cover - protocol stub
        raise NotImplementedError


def as_protocol(learner: Any) -> LearnerProtocol:
    """Coerce a learner object, step generator, or protocol to a protocol."""
    if isinstance(learner, LearnerProtocol):
        return learner
    steps = getattr(learner, "steps", None)
    if callable(steps):
        return LearnerProtocol(steps())
    if isinstance(learner, Generator):
        return LearnerProtocol(learner)
    raise TypeError(
        f"cannot drive {type(learner).__name__}: expected a LearnerProtocol, "
        "a step generator, or an object with a steps() method"
    )


def run_inline(steps: Steps) -> Any:
    """Exhaust a step generator that never yields and return its result.

    Used to express plain-callable search primitives in terms of their
    step-generator twins (:mod:`repro.learning.search`): when every
    predicate is a lifted ordinary function the generator runs to
    completion without emitting a round.
    """
    try:
        next(steps)
    except StopIteration as stop:
        return stop.value
    raise ProtocolError("inline steps unexpectedly yielded a round")
