"""Round-per-line JSON wire for step-driven sessions (``--serve-stdio``).

The remote story in its smallest deployable form: the server parks a
:class:`~repro.interactive.session.LearningSession` between answers and
speaks newline-delimited JSON on stdio, so *anything* that can read and
write lines — a subprocess, an ssh pipe, a websocket bridge — can be the
user.  One line out per round, one line in per answer batch:

server → client
    ``{"type": "round", "index": i, "batched": b, "questions": [...]}``
        the pending round; each question is
        :func:`~repro.core.serialize.question_to_dict` data
    ``{"type": "snapshot", "snapshot": {...}}``   reply to a snapshot request
    ``{"type": "error", "message": "..."}``       recoverable protocol error
    ``{"type": "finished", "query": "...", ...}`` terminal summary

client → server
    ``{"type": "answers", "answers": [true, false, ...]}``
    ``{"type": "snapshot"}``  park: emit the session snapshot, keep waiting
    ``{"type": "quit"}``      abandon the session

The server exits 0 on a finished session, 1 on quit/EOF.  Resuming is the
flag's other half: ``--resume FILE`` loads a snapshot written by an
earlier ``snapshot`` exchange and replays it before serving, continuing
at the exact parked round.
"""

from __future__ import annotations

import json
from typing import IO, Any

from repro.core.serialize import query_to_dict
from repro.interactive.session import LearningSession, SessionSnapshot
from repro.protocol.core import Finished, ProtocolError, Round
from repro.protocol.wire import decode_answers, payload_to_dict

__all__ = ["round_to_dict", "finished_to_dict", "serve_stdio"]


def round_to_dict(round_: Round, index: int) -> dict[str, Any]:
    """The wire form of one round (membership or expression questions)."""
    return {
        "type": "round",
        "index": index,
        "batched": round_.batched,
        "questions": [payload_to_dict(q) for q in round_.questions],
    }


def finished_to_dict(session: LearningSession, rounds: int) -> dict[str, Any]:
    """The wire form of the terminal summary (shared with the socket
    server, which adds session framing and metering on top)."""
    result = session.result
    return {
        "type": "finished",
        "query": result.query.shorthand(),
        "query_json": query_to_dict(result.query),
        "questions": result.questions_asked,
        "rounds": rounds,
        "restarts": result.restarts,
    }


def serve_stdio(
    session: LearningSession,
    stdin: IO[str],
    stdout: IO[str],
    resume: SessionSnapshot | None = None,
) -> int:
    """Serve one learning session over newline-delimited JSON.

    ``session`` must be fresh (not started); with ``resume`` the snapshot
    is replayed first and serving continues from the parked round.
    """

    def emit(message: dict[str, Any]) -> None:
        stdout.write(json.dumps(message) + "\n")
        stdout.flush()

    event = session.resume(resume) if resume is not None else session.start()
    rounds = 0
    while True:
        if isinstance(event, Finished):
            emit(finished_to_dict(session, rounds))
            return 0
        rounds += 1
        emit(round_to_dict(event, rounds - 1))
        while True:  # one or more client messages answer this round
            line = stdin.readline()
            if not line:
                return 1  # EOF: the remote user hung up mid-session
            line = line.strip()
            if not line:
                continue
            try:
                message = json.loads(line)
                kind = message.get("type", "answers")
            except (json.JSONDecodeError, AttributeError):
                emit({"type": "error", "message": "expected a JSON object"})
                continue
            if kind == "quit":
                return 1
            if kind == "snapshot":
                # A snapshot failure (divergence, mid-round guard) is the
                # client's problem, not grounds to kill the dialogue:
                # report it and keep the session parked at this round.
                try:
                    snapshot = session.snapshot().to_dict()
                except ProtocolError as error:  # includes SnapshotError
                    emit({"type": "error", "message": str(error)})
                    continue
                emit({"type": "snapshot", "snapshot": snapshot})
                continue
            if kind != "answers":
                emit(
                    {"type": "error", "message": f"unknown type {kind!r}"}
                )
                continue
            try:
                event = session.feed(decode_answers(message))
            except ProtocolError as error:
                emit({"type": "error", "message": str(error)})
                continue
            break
