"""Synchronous drivers: pull answers for a sans-io learner (DESIGN.md §2e).

:func:`drive` reproduces the pre-protocol pull path *bit-identically*: a
round recorded as ``batched`` is answered through
:func:`~repro.oracle.base.ask_all` (chunking included) and a single-ask
round through ``oracle.ask``, so every wrapper in the oracle stack — cache
residency, counting statistics, seeded noise draws, replay positions,
transcripts — observes exactly the transport calls the old inline code
made.  The learners' public ``learn()`` methods are now thin shims over
``drive(self, self.oracle)``.
"""

from __future__ import annotations

from typing import Any

from repro.oracle.base import ask_all
from repro.oracle.expression import ExpressionQuestion
from repro.protocol.core import Finished, Round, as_protocol

__all__ = ["answer_round", "drive", "SyncDriver"]


def answer_round(oracle: Any, round_: Round) -> list[bool]:
    """Answer one round through ``oracle``, replaying the legacy transport.

    Membership rounds go through ``ask_all`` (batched) or ``oracle.ask``
    (single); expression-question rounds dispatch onto the oracle's
    ``requires_conjunction`` / ``requires_implication`` methods one call
    per question, as the pull-based expression learner did.
    """
    questions = round_.questions
    if isinstance(questions[0], ExpressionQuestion):
        return [q.answer_with(oracle) for q in questions]
    if round_.batched:
        return ask_all(oracle, questions)
    return [bool(oracle.ask(q)) for q in questions]


def drive(learner: Any, oracle: Any) -> Any:
    """Run a step-driven learner to completion against ``oracle``.

    ``learner`` may be an object with ``steps()``, a step generator, or a
    :class:`~repro.protocol.core.LearnerProtocol`.  Returns the learner's
    result — the same object the old pull-based ``learn()`` returned.
    """
    protocol = as_protocol(learner)
    event = protocol.start()
    while not isinstance(event, Finished):
        event = protocol.feed(answer_round(oracle, event))
    return event.result


class SyncDriver:
    """The pull-path driver as an object, for symmetry with
    :class:`~repro.protocol.aio.AsyncDriver`."""

    def __init__(self, oracle: Any) -> None:
        self.oracle = oracle

    def run(self, learner: Any) -> Any:
        return drive(learner, self.oracle)
