"""Sans-io learner protocol: rounds out, answers in (DESIGN.md §2e).

* :mod:`repro.protocol.core` — :class:`Round` / :class:`Finished` events,
  the :class:`LearnerProtocol` state machine, and the ``ask_one`` /
  ``ask_round`` yield-point helpers step-driven learners are written with.
* :mod:`repro.protocol.drivers` — the synchronous pull driver,
  bit-identical to the historical inline oracle calls.
* :mod:`repro.protocol.aio` — the asyncio driver for remote answerers.
* :mod:`repro.protocol.stdio` — a round-per-line JSON wire format and the
  ``repro learn --serve-stdio`` server loop.
"""

from repro.protocol.aio import AsyncDriver, answer_round_async, async_drive
from repro.protocol.core import (
    Finished,
    LearnerProtocol,
    ProtocolError,
    Round,
    as_protocol,
    ask_one,
    ask_round,
    run_inline,
)
from repro.protocol.drivers import SyncDriver, answer_round, drive
from repro.protocol.wire import (
    decode_answers,
    payload_from_dict,
    payload_to_dict,
)

__all__ = [
    "AsyncDriver",
    "Finished",
    "LearnerProtocol",
    "ProtocolError",
    "Round",
    "SyncDriver",
    "answer_round",
    "answer_round_async",
    "as_protocol",
    "ask_one",
    "ask_round",
    "async_drive",
    "decode_answers",
    "drive",
    "payload_from_dict",
    "payload_to_dict",
    "run_inline",
]
