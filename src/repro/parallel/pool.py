"""``ShardWorkerPool``: persistent worker processes for shard evaluation.

ROADMAP names the gap directly: the sharded backend accepts a
caller-owned :mod:`concurrent.futures` executor, but the GIL makes
thread pools useless on the pure-python kernel, and a stock
``ProcessPoolExecutor`` re-pickles the shard state on **every** submit.
This pool inverts that cost: each worker process receives its slice of
the built shard payloads *once* and keeps it between calls, so per
evaluation only the compiled query crosses the boundary outward and only
answer bitsets (or extracted label lists) come back — a few hundred
bytes per round trip instead of the whole inverted index.

Coordination is deliberately simple (DESIGN.md §2d):

* one duplex pipe per worker, at most **one request in flight per
  worker** (wave scheduling), so the protocol can never deadlock on pipe
  buffers and replies are matched to requests purely by order;
* shard loads are tagged with a pool-issued monotone *state token*;
  every evaluation request names the token it expects, and a mismatch
  raises :class:`StaleShardStateError` instead of returning answers from
  outdated state (the worker-side safety net behind the relation
  ``version`` contract of DESIGN.md §2c);
* a dead worker (crash, ``os._exit``, kill) surfaces as
  :class:`WorkerCrashError` on the *current* call and permanently breaks
  the pool — callers that own their pool (the sharded backend, the
  parallel oracle) respond by building a fresh one;
* shutdown is exception-safe and idempotent: ``close()`` (also the
  context-manager exit) politely asks workers to exit, then terminates
  stragglers; an :mod:`atexit` guard closes pools that were never closed
  explicitly, so interpreter shutdown never hangs on live children.

Start method: ``fork`` where the platform offers it (the payloads were
already shipped explicitly, so fork is purely a startup-latency win),
``spawn`` otherwise.
"""

from __future__ import annotations

import atexit
import itertools
import multiprocessing
import os
from typing import Any, Iterable, Sequence

from repro.parallel.worker import RawShardPayload, ShardPayload, worker_main

__all__ = [
    "PoolLease",
    "ShardWorkerPool",
    "WorkerCrashError",
    "WorkerTaskError",
    "StaleShardStateError",
    "resolve_processes",
    "shard_payloads",
]


class WorkerCrashError(RuntimeError):
    """A worker process died before answering (crash, signal, exit)."""


class WorkerTaskError(RuntimeError):
    """A request raised inside a worker; carries the remote traceback."""

    def __init__(self, type_name: str, message: str, remote_traceback: str):
        super().__init__(f"{type_name}: {message}")
        self.type_name = type_name
        self.remote_traceback = remote_traceback


class StaleShardStateError(RuntimeError):
    """A worker held shard state from a different load than requested.

    Raised instead of silently answering from outdated shards.  The
    remedy is to re-ship: backends call ``load_shards`` again (which
    ``ShardedBitmaskBackend`` does automatically via ``refresh()`` /
    its stale-retry path).
    """

    def __init__(self, expected: int | None, held: int | None) -> None:
        super().__init__(
            f"worker shard state is stale (expected load token {expected}, "
            f"worker holds {held}); re-ship via load_shards()/refresh()"
        )
        self.expected = expected
        self.held = held


def resolve_processes(processes: int) -> int:
    """Worker-count convention shared by the pool, backend and CLI:
    ``0`` means every core (``os.cpu_count()``), positive counts are
    taken literally, negatives are rejected."""
    if processes < 0:
        raise ValueError(f"processes must be >= 0, got {processes}")
    return processes if processes else (os.cpu_count() or 1)


class _Worker:
    """Coordinator-side handle: process + pipe endpoint."""

    __slots__ = ("process", "connection")

    def __init__(self, process, connection) -> None:
        self.process = process
        self.connection = connection


class ShardWorkerPool:
    """N persistent worker processes answering the DESIGN.md §2d protocol.

    Parameters
    ----------
    processes:
        Worker count; ``0`` (the default) means one per core.
    start_method:
        Explicit :mod:`multiprocessing` start method; defaults to
        ``fork`` when available, else ``spawn``.
    """

    def __init__(
        self, processes: int = 0, start_method: str | None = None
    ) -> None:
        count = resolve_processes(processes)
        if start_method is None:
            methods = multiprocessing.get_all_start_methods()
            start_method = "fork" if "fork" in methods else "spawn"
        context = multiprocessing.get_context(start_method)
        self._workers: list[_Worker] = []
        self._closed = False
        self._tokens = itertools.count(1)
        for _ in range(count):
            ours, theirs = context.Pipe(duplex=True)
            process = context.Process(
                target=worker_main, args=(theirs,), daemon=True
            )
            process.start()
            theirs.close()  # the child's end lives in the child
            self._workers.append(_Worker(process, ours))
        atexit.register(self.close)

    # ------------------------------------------------------------------
    # Introspection / lifecycle
    # ------------------------------------------------------------------
    @property
    def processes(self) -> int:
        return len(self._workers)

    @property
    def closed(self) -> bool:
        return self._closed

    def close(self) -> None:
        """Shut every worker down; safe to call twice (a no-op then)."""
        if self._closed:
            return
        self._closed = True
        try:
            atexit.unregister(self.close)
        except Exception:  # pragma: no cover - interpreter teardown
            pass
        for worker in self._workers:
            try:
                worker.connection.send(("close",))
            except (BrokenPipeError, OSError):
                pass
        for worker in self._workers:
            worker.process.join(timeout=2.0)
            if worker.process.is_alive():  # pragma: no cover - stuck child
                worker.process.terminate()
                worker.process.join(timeout=2.0)
            try:
                worker.connection.close()
            except OSError:  # pragma: no cover - already gone
                pass

    def __enter__(self) -> "ShardWorkerPool":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        state = "closed" if self._closed else "open"
        return f"ShardWorkerPool({self.processes} workers, {state})"

    # ------------------------------------------------------------------
    # Transport
    # ------------------------------------------------------------------
    def _check_open(self) -> None:
        if self._closed:
            raise RuntimeError("the worker pool is closed")

    def _crash(self, index: int, cause: BaseException) -> WorkerCrashError:
        """Translate a dead pipe into a clean error and break the pool."""
        process = self._workers[index].process
        process.join(timeout=0.5)
        error = WorkerCrashError(
            f"worker {index} (pid {process.pid}) died mid-request "
            f"(exitcode {process.exitcode}); the pool is now closed"
        )
        error.__cause__ = cause
        self.close()
        return error

    def _send(self, index: int, message: tuple) -> None:
        try:
            self._workers[index].connection.send(message)
        except (BrokenPipeError, ConnectionResetError, OSError) as exc:
            raise self._crash(index, exc) from exc

    def _recv(self, index: int) -> Any:
        try:
            reply = self._workers[index].connection.recv()
        except (EOFError, ConnectionResetError, OSError) as exc:
            raise self._crash(index, exc) from exc
        kind = reply[0]
        if kind == "ok":
            return reply[1]
        if kind == "stale":
            raise StaleShardStateError(expected=None, held=reply[1])
        if kind == "error":
            raise WorkerTaskError(reply[1], reply[2], reply[3])
        raise RuntimeError(  # pragma: no cover - protocol violation
            f"malformed worker reply {reply!r}"
        )

    def _broadcast(self, messages: Sequence[tuple]) -> list[Any]:
        """One request per worker (``messages[i]`` → worker ``i``), all
        pipelined, replies in worker order.

        Every reply is drained even when one of them is an error —
        leaving a reply unread would desynchronize that worker's pipe
        and hand its answer to the *next* request.  The first error is
        re-raised after the drain.  (A crash closes the pool, so there
        is nothing left to drain.)
        """
        for index, message in enumerate(messages):
            self._send(index, message)
        results: list[Any] = []
        first_error: Exception | None = None
        for index in range(len(messages)):
            try:
                results.append(self._recv(index))
            except WorkerCrashError:
                raise
            except (StaleShardStateError, WorkerTaskError) as exc:
                if first_error is None:
                    first_error = exc
                results.append(None)
        if first_error is not None:
            raise first_error
        return results

    # ------------------------------------------------------------------
    # Shard evaluation
    # ------------------------------------------------------------------
    def load_shards(
        self, payloads: Sequence[ShardPayload], kernel: str = "python"
    ) -> int:
        """Ship built shard payloads, striped round-robin across workers,
        and return the state token naming this load.

        ``kernel`` selects the worker-side evaluation kernel for this
        load (``"python"`` or ``"numpy"``, DESIGN.md §2g).

        This is the invalidation broadcast: a re-ship replaces every
        worker's shard state and retires the previous token, so requests
        still naming it fail with :class:`StaleShardStateError` instead
        of mixing answers from two relation versions.
        """
        self._check_open()
        token = next(self._tokens)
        shares = [
            ("shards", token, list(payloads[index :: self.processes]), kernel)
            for index in range(self.processes)
        ]
        self._broadcast(shares)
        return token

    def build_shards(
        self,
        vocabulary: Any,
        payloads: Sequence[RawShardPayload],
        kernel: str = "python",
    ) -> int:
        """Ship **raw** shard rows plus the vocabulary and let the
        workers run the abstraction themselves — the parallel-ingest
        path.  Same striping, token and invalidation semantics as
        :meth:`load_shards`; the only difference is where the build cost
        lands (each worker abstracts its own slice concurrently instead
        of the coordinator abstracting everything before shipping).
        """
        self._check_open()
        token = next(self._tokens)
        shares = [
            (
                "build_shards",
                token,
                vocabulary,
                list(payloads[index :: self.processes]),
                kernel,
            )
            for index in range(self.processes)
        ]
        self._broadcast(shares)
        return token

    def dump_shards(self, token: int) -> list[ShardPayload]:
        """The built shard state in wire form, reassembled in shard
        (offset) order — introspection for the build-equivalence tests,
        which assert a raw worker-side build is bit-identical to a
        coordinator build."""
        self._check_open()
        try:
            replies = self._broadcast(
                [("dump_shards", token)] * self.processes
            )
        except StaleShardStateError as exc:
            raise StaleShardStateError(expected=token, held=exc.held) from None
        merged = [payload for reply in replies for payload in reply]
        merged.sort(key=lambda payload: payload[0])
        return merged

    def _evaluate(self, op: str, token: int, compiled: Any) -> list:
        self._check_open()
        try:
            replies = self._broadcast(
                [(op, token, compiled)] * self.processes
            )
        except StaleShardStateError as exc:
            raise StaleShardStateError(expected=token, held=exc.held) from None
        merged = [pair for reply in replies for pair in reply]
        merged.sort(key=lambda pair: pair[0])
        return merged

    def evaluate_bits(
        self, token: int, compiled: Any
    ) -> list[tuple[int, int]]:
        """Per-shard answer bitsets ``(offset, shard-local bits)``, in
        shard (offset) order, for the load named by ``token``."""
        return self._evaluate("eval_bits", token, compiled)

    def evaluate_labels(
        self, token: int, compiled: Any
    ) -> list[tuple[int, list[bool]]]:
        """Per-shard extracted label lists ``(offset, labels)``, in shard
        order — the full-relation labeling pass done worker-side."""
        return self._evaluate("eval_labels", token, compiled)

    # ------------------------------------------------------------------
    # Oracle dispatch
    # ------------------------------------------------------------------
    def set_oracle(
        self, token: int, oracle: Any, factory: bool = False
    ) -> None:
        """Ship an oracle (or a zero-argument factory constructing one)
        to every worker once, keyed by ``token``."""
        self._check_open()
        self._broadcast(
            [("oracle", token, oracle, factory)] * self.processes
        )

    def drop_oracle(self, token: int) -> None:
        """Release the oracle shipped under ``token`` on every worker."""
        if self._closed:
            return
        self._broadcast([("oracle_drop", token)] * self.processes)

    def ask_chunks(
        self, token: int, chunks: Sequence[Sequence[Any]]
    ) -> list[list[bool]]:
        """Answer question chunks through the shipped oracle, fanning
        them across workers, and return the answers **in submission
        order** — chunk ``i``'s answers sit at result index ``i``
        whichever worker computed them, which is what preserves the
        sequential-equivalence contract (DESIGN.md §2b/§2d).

        Scheduling is wave-based: each wave sends at most one chunk per
        worker and collects the replies before the next wave, so one
        request is in flight per worker at any time.
        """
        self._check_open()
        results: list[list[bool] | None] = [None] * len(chunks)
        pending = iter(enumerate(chunks))
        while True:
            wave: list[tuple[int, int]] = []
            for worker_index in range(self.processes):
                entry = next(pending, None)
                if entry is None:
                    break
                chunk_index, chunk = entry
                self._send(
                    worker_index, ("ask", token, list(chunk))
                )
                wave.append((worker_index, chunk_index))
            if not wave:
                break
            first_error: Exception | None = None
            for worker_index, chunk_index in wave:
                try:
                    results[chunk_index] = self._recv(worker_index)
                except WorkerCrashError:
                    raise
                except (StaleShardStateError, WorkerTaskError) as exc:
                    if first_error is None:
                        first_error = exc
            if first_error is not None:
                raise first_error
        return [answers for answers in results if answers is not None]

    def ping(self, payload: Any = None) -> list[Any]:
        """Round-trip a payload through every worker (health check)."""
        self._check_open()
        return self._broadcast([("ping", payload)] * self.processes)


def shard_payloads(shards: Iterable[Any]) -> list[ShardPayload]:
    """Extract the wire payloads from built ``Shard`` objects."""
    return [
        (shard.offset, shard.count, shard.inverted, shard.all_bits)
        for shard in shards
    ]


class PoolLease:
    """The owner/borrower lifecycle shared by every pool consumer.

    The sharded backend and the parallel oracle need the same state
    machine around their pool: create an **owned** pool lazily (and a
    fresh one after a crash), validate that an **injected** pool is
    still alive, refuse use after release, and release idempotently.
    This helper is that machine, so the consumers cannot drift apart.

    ``generation`` increments every time :meth:`acquire` creates a pool;
    consumers compare it against the generation they last shipped state
    to, which is how re-shipping after crash recovery (and first-use
    shipping on injected pools) stays a one-line check.
    """

    def __init__(
        self, pool: ShardWorkerPool | None = None, processes: int = 0
    ) -> None:
        self.owns = pool is None
        if self.owns:
            resolve_processes(processes)  # validate eagerly, build lazily
        self.processes = processes
        self._pool = pool
        self.generation = 0
        self.closed = False

    @property
    def pool(self) -> ShardWorkerPool | None:
        """The current pool, without creating one (introspection only)."""
        return self._pool

    def acquire(self) -> ShardWorkerPool:
        """The live pool, creating a fresh owned one when necessary."""
        if self.closed:
            raise RuntimeError("the worker-pool lease is closed")
        if self._pool is None or self._pool.closed:
            if not self.owns:
                raise RuntimeError(
                    "the injected worker pool is closed; the pool owner "
                    "must supply a live pool"
                )
            self._pool = ShardWorkerPool(self.processes)
            self.generation += 1
        return self._pool

    def reset_after_crash(self) -> None:
        """Forget a crashed owned pool so :meth:`acquire` starts a fresh
        one; an injected pool stays (its owner decides what happens)."""
        if self.owns:
            self._pool = None

    def release(self) -> ShardWorkerPool | None:
        """Idempotent teardown.  Closes an owned pool outright; returns
        a still-live *borrowed* pool (for consumer-specific cleanup,
        e.g. dropping a shipped oracle) or ``None``."""
        if self.closed:
            return None
        self.closed = True
        pool, self._pool = self._pool, None
        if pool is None or pool.closed:
            return None
        if self.owns:
            pool.close()
            return None
        return pool
