"""The shard-worker process: one message loop, persistent local state.

A worker is the far end of :class:`~repro.parallel.pool.ShardWorkerPool`'s
pipe protocol (DESIGN.md §2d).  It holds two kinds of state *between*
requests, which is the whole point of the pool — the expensive payloads
cross the process boundary once, not per evaluation:

* **shard state** — its assigned slice of a sharded backend's shards,
  tagged with the pool-issued *state token* of the load that shipped
  them.  Shards arrive either **built** (``"shards"``: the coordinator
  abstracted the rows and ships inverted indexes) or **raw**
  (``"build_shards"``: raw shard rows plus the vocabulary; the worker
  runs the abstraction itself — the parallel-ingest path).  Either way,
  per evaluation only a compiled query arrives and only bitsets (or
  extracted label lists) leave;
* **oracle state** — membership oracles keyed by token, each an
  independent copy (or locally constructed from a shipped factory), so
  :class:`~repro.oracle.parallel.ParallelOracle` can fan question chunks
  out without re-pickling the oracle.

Messages are plain tuples ``(op, ...)`` and every reply is
``("ok", result)``, ``("stale", have_token)`` or ``("error", type_name,
message, traceback_text)``; the full table lives in DESIGN.md §2d.  A
worker answers requests strictly in arrival order (the pipe is FIFO),
which is what lets the coordinator reassemble replies positionally.

The token check on evaluation requests is the stale-state safety net:
the coordinator names the state token its answer must come from, and a
worker holding a different load answers ``("stale", ...)`` instead of
silently evaluating over outdated shards (e.g. after another backend
sharing the pool re-shipped its own state).
"""

from __future__ import annotations

import os
import traceback
from typing import Any, Iterator, Mapping

from repro.data.backends.sharded import Shard

__all__ = ["worker_main"]

#: Built-shard payload shape: ``(offset, count, inverted, all_bits)`` —
#: exactly the wire fields of the sharded backend's ``Shard``, already
#: built, so the worker never re-abstracts rows.
ShardPayload = tuple[int, int, dict[int, int], int]

#: Raw-shard payload shape: ``(offset, count, row_counts, flat_rows)`` —
#: the shard's rows projected onto the proposition-read attributes
#: (``Vocabulary.project_rows``: value tuples, with full-dict fallback
#: rows) as ONE flat list, plus the per-object row counts that let the
#: worker regroup them.  Flat because the coordinator projects a whole
#: shard in a single C-level pass — per-object lists would cost a
#: python call per object, which at relation scale is most of the
#: coordinator-side ingest time.  The worker abstracts the regrouped
#: rows through the shipped vocabulary (parallel ingest).
RawShardPayload = tuple[int, int, list[int], list[tuple | Mapping[str, Any]]]


def _regroup(
    row_counts: list[int], flat_rows: list
) -> "Iterator[list]":
    """Slice a flat projected-row list back into per-object row lists."""
    start = 0
    for n in row_counts:
        yield flat_rows[start : start + n]
        start += n


class _WorkerState:
    """Everything one worker keeps between requests."""

    __slots__ = ("shards", "state_token", "oracles")

    def __init__(self) -> None:
        self.shards: list[Shard] = []
        self.state_token: int | None = None
        self.oracles: dict[int, Any] = {}


def _handle(message: tuple, state: _WorkerState) -> tuple:
    """Compute the reply for one request against the persistent state."""
    op = message[0]
    if op == "shards":
        token, payloads, kernel = message[1], message[2], message[3]
        state.shards = [Shard.from_payload(p, kernel) for p in payloads]
        state.state_token = token
        return ("ok", len(state.shards))
    if op == "build_shards":
        # Parallel ingest: abstraction (the expensive part of a build)
        # runs here, on this worker's slice, not in the coordinator.
        token, vocabulary, payloads, kernel = (
            message[1], message[2], message[3], message[4],
        )
        state.shards = [
            Shard(
                offset,
                vocabulary.mask_sets_projected(
                    _regroup(row_counts, flat_rows)
                ),
                kernel,
            )
            for offset, _count, row_counts, flat_rows in payloads
        ]
        state.state_token = token
        return ("ok", len(state.shards))
    if op in ("eval_bits", "eval_labels", "dump_shards"):
        if message[1] != state.state_token:
            return ("stale", state.state_token)
        if op == "dump_shards":
            # Introspection for the build-equivalence tests: the built
            # state in wire form, whichever ingest path produced it.
            return (
                "ok",
                [
                    (s.offset, s.count, s.inverted, s.all_bits)
                    for s in state.shards
                ],
            )
        compiled = message[2]
        if op == "eval_bits":
            return (
                "ok",
                [(s.offset, s.evaluate_bits(compiled)) for s in state.shards],
            )
        return (
            "ok",
            [(s.offset, s.evaluate_labels(compiled)) for s in state.shards],
        )
    if op == "oracle":
        token, payload, is_factory = message[1], message[2], message[3]
        state.oracles[token] = payload() if is_factory else payload
        return ("ok", None)
    if op == "oracle_drop":
        state.oracles.pop(message[1], None)
        return ("ok", None)
    if op == "ask":
        from repro.oracle.base import ask_all

        oracle = state.oracles.get(message[1])
        if oracle is None:
            raise KeyError(f"no oracle shipped under token {message[1]}")
        return ("ok", ask_all(oracle, message[2]))
    if op == "ping":
        return ("ok", message[1])
    raise ValueError(f"unknown worker operation {op!r}")


def worker_main(connection: Any) -> None:
    """Serve pool requests over ``connection`` until ``close``/EOF.

    Runs in the child process.  Handler failures are reported as
    ``error`` replies and the loop continues — a broken request must not
    take down sibling state.  ``SystemExit`` (and the explicit ``abort``
    request, used by the crash-path tests) terminate the process without
    a reply, which the coordinator surfaces as
    :class:`~repro.parallel.pool.WorkerCrashError`.
    """
    state = _WorkerState()
    while True:
        try:
            message = connection.recv()
        except (EOFError, OSError):
            break
        op = message[0]
        if op == "close":
            break
        if op == "abort":  # crash simulation: die without replying
            os._exit(1)
        try:
            reply = _handle(message, state)
        except Exception as exc:
            reply = (
                "error",
                type(exc).__name__,
                str(exc),
                traceback.format_exc(),
            )
        try:
            connection.send(reply)
        except (BrokenPipeError, OSError):
            break
