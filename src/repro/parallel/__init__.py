"""Process-parallel evaluation: persistent shard workers (DESIGN.md §2d).

The pure-python evaluation kernel is GIL-bound, so thread pools buy the
sharded backend nothing.  This package supplies the multi-core path:

* :class:`ShardWorkerPool` — N persistent worker processes that receive
  their slice of the built shard state **once** and answer compiled
  queries (and oracle question chunks) over a tiny pipe protocol;
* the worker loop itself (:mod:`repro.parallel.worker`);
* the failure vocabulary — :class:`WorkerCrashError`,
  :class:`WorkerTaskError`, :class:`StaleShardStateError`.

Consumers: ``ShardedBitmaskBackend(processes=N)`` (or the engine's
``backend_options={"processes": N}`` / CLI ``--parallel N``) for batch
evaluation, and :class:`repro.oracle.parallel.ParallelOracle` for
membership-question fan-out.
"""

from repro.parallel.pool import (
    PoolLease,
    ShardWorkerPool,
    StaleShardStateError,
    WorkerCrashError,
    WorkerTaskError,
    resolve_processes,
    shard_payloads,
)

__all__ = [
    "PoolLease",
    "ShardWorkerPool",
    "StaleShardStateError",
    "WorkerCrashError",
    "WorkerTaskError",
    "resolve_processes",
    "shard_payloads",
]
