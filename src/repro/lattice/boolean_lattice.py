"""The Boolean lattice on ``n`` variables (Fig. 4) and its query-aware views.

The lattice underpins both role-preserving learning algorithms (§3.2): each
point is a Boolean tuple; level ``l`` holds the tuples with exactly ``l``
false variables; a tuple's children set one more true variable to false.
Everything here is generator-based so nothing of size ``2^n`` is materialized
unless a caller iterates that far.

Two views matter to the paper:

* the **full lattice with Horn violations removed** (§3.2.2) — tuples whose
  true set contains a universal body while the head is false are deleted;
* the **body lattice** for a given head ``h`` (§3.2.1, Fig. 5) — a lattice
  over the non-head variables, embedded into full tuples by fixing ``h``
  false and every other head variable true.
"""

from __future__ import annotations

from itertools import combinations
from typing import Iterable, Iterator, Sequence

from repro.core import tuples as bt
from repro.core.expressions import UniversalHorn

__all__ = [
    "children",
    "parents",
    "level",
    "level_tuples",
    "downset",
    "upset",
    "is_comparable",
    "violates_universals",
    "compliant_children",
    "BodyLattice",
]


def children(t: int, n: int) -> Iterator[int]:
    """Tuples obtained by setting exactly one true variable to false."""
    mask = t
    while mask:
        low = mask & -mask
        yield t ^ low
        mask ^= low


def parents(t: int, n: int) -> Iterator[int]:
    """Tuples obtained by setting exactly one false variable to true."""
    mask = bt.all_true(n) & ~t
    while mask:
        low = mask & -mask
        yield t | low
        mask ^= low


def level(t: int, n: int) -> int:
    """Lattice level of ``t``: the number of false variables (Fig. 4)."""
    return n - bt.popcount(t)


def level_tuples(n: int, l: int) -> Iterator[int]:
    """All tuples at level ``l`` (``C(n, l)`` of them)."""
    top = bt.all_true(n)
    for false_vars in combinations(range(n), l):
        yield top & ~bt.mask_of(false_vars)


def downset(t: int, n: int, strict: bool = False) -> Iterator[int]:
    """All tuples whose true set is a subset of ``t``'s (descending order).

    Uses the standard subset-enumeration trick on the bitmask.
    """
    sub = t
    while True:
        if not (strict and sub == t):
            yield sub
        if sub == 0:
            return
        sub = (sub - 1) & t


def upset(t: int, n: int, strict: bool = False) -> Iterator[int]:
    """All tuples whose true set is a superset of ``t``'s."""
    free = bt.all_true(n) & ~t
    for extra in downset(free, n):
        if strict and extra == 0:
            continue
        yield t | extra


def is_comparable(a: int, b: int) -> bool:
    """True iff one tuple lies in the other's upset (Fig. 4)."""
    return bt.is_subset(a, b) or bt.is_subset(b, a)


def violates_universals(t: int, universals: Iterable[UniversalHorn]) -> bool:
    """§3.2.2: tuple has some universal body fully true but the head false."""
    return any(u.violated_by(t) for u in universals)


def compliant_children(
    t: int, n: int, universals: Sequence[UniversalHorn]
) -> list[int]:
    """Children of ``t`` with Horn-violating tuples removed (§3.2.2)."""
    return [c for c in children(t, n) if not violates_universals(c, universals)]


class BodyLattice:
    """The per-head search lattice of §3.2.1 (Fig. 5).

    A lattice over the non-head variables of a query, used to find the bodies
    of a given universal head ``h``.  Points are subsets of the non-head
    variables; :meth:`embed` produces the full Boolean tuple with ``h`` set
    false and the remaining head variables set true — which "neutralizes the
    influence" of the other heads while exposing ``h``'s dependence.
    """

    def __init__(self, n: int, head: int, all_heads: Iterable[int]) -> None:
        self.n = n
        self.head = head
        if not 0 <= head < n:
            raise ValueError(f"head {head} out of range for n={n}")
        self.other_heads = frozenset(all_heads) - {head}
        self.non_heads: tuple[int, ...] = tuple(
            v for v in range(n) if v != head and v not in self.other_heads
        )
        self._other_heads_mask = bt.mask_of(self.other_heads)

    def embed(self, true_non_heads: Iterable[int]) -> int:
        """Full tuple: given non-heads true, other heads true, ``h`` false."""
        return bt.mask_of(true_non_heads) | self._other_heads_mask

    def top(self) -> int:
        """The embedded top: every non-head variable true."""
        return self.embed(self.non_heads)

    def bottom(self) -> int:
        """The embedded bottom: every non-head variable false."""
        return self.embed(())

    def distinguishing_tuple(self, body: Iterable[int]) -> int:
        """Def. 3.4: the embedded tuple whose true non-heads are ``body``."""
        return self.embed(body)
