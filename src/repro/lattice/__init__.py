"""The Boolean lattice on n variables and its query-aware views (§3.2)."""

from repro.lattice.boolean_lattice import (
    BodyLattice,
    children,
    compliant_children,
    downset,
    is_comparable,
    level,
    level_tuples,
    parents,
    upset,
    violates_universals,
)

__all__ = [
    "BodyLattice",
    "children",
    "compliant_children",
    "downset",
    "is_comparable",
    "level",
    "level_tuples",
    "parents",
    "upset",
    "violates_universals",
]
